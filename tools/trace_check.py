#!/usr/bin/env python3
"""Query/assertion helper for CellFi JSONL trace files (DESIGN.md §13).

Traces are one JSON object per line:

    {"t_us": 1234, "component": "im", "event": "hop", "cell": 0, ...}

Subcommands (all exit 0 on success, 1 on a failed assertion, 2 on bad
input; output is deterministic so tests can pin it exactly):

    filter FILE [--component C] [--event E]
        Print matching events, one canonical line each:
        `<t_us> <component> <event> k=v ...` (fields in emission order).

    count FILE [--component C] [--event E] [--min N] [--max N]
        Print the number of matching events; assert optional bounds.

    order FILE TOKEN [TOKEN ...]
        Assert the TOKENs (`component:event`) occur as a subsequence of
        the trace, in order.

    deadline FILE --first C:E --second C:E --max-us N [--require N]
        For every `second` event, find the latest preceding `first`
        event and assert the gap is <= N microseconds. With --require,
        additionally assert at least N pairs were checked.

    delta FILE --component C --event E --field F
           [--min X] [--max X] [--monotonic {incr,nondecr,decr,noninc}]
        Check consecutive differences of a numeric field over the
        matching events.

    selftest DIR [--expect FILE]
        Run every case in DIR/cases.txt (one `<subcommand args...>` per
        line, file paths relative to DIR) and compare the combined
        output against DIR/expected.txt (or --expect). Mirrors
        tests/lint_selftest: exact-output pinning.
"""

import argparse
import json
import shlex
import sys
from pathlib import Path


def fail(msg):
    print(f"trace_check: {msg}", file=sys.stderr)
    sys.exit(1)


def load_events(path):
    events = []
    try:
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except ValueError as e:
                    print(f"trace_check: {path}:{lineno}: bad JSON: {e}",
                          file=sys.stderr)
                    sys.exit(2)
    except OSError as e:
        print(f"trace_check: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    return events


def matches(ev, component, event):
    if component is not None and ev.get("component") != component:
        return False
    if event is not None and ev.get("event") != event:
        return False
    return True


def canonical(ev):
    head = f'{ev.get("t_us", 0)} {ev.get("component", "?")} {ev.get("event", "?")}'
    fields = [f"{k}={v}" for k, v in ev.items()
              if k not in ("t_us", "component", "event")]
    return " ".join([head] + fields)


def parse_token(token):
    if ":" not in token:
        fail(f"token '{token}' must be component:event")
    component, event = token.split(":", 1)
    return component, event


def cmd_filter(args):
    for ev in load_events(args.file):
        if matches(ev, args.component, args.event):
            print(canonical(ev))
    return 0


def cmd_count(args):
    n = sum(1 for ev in load_events(args.file)
            if matches(ev, args.component, args.event))
    print(n)
    if args.min is not None and n < args.min:
        fail(f"count {n} < required min {args.min}")
    if args.max is not None and n > args.max:
        fail(f"count {n} > allowed max {args.max}")
    return 0


def cmd_order(args):
    tokens = [parse_token(t) for t in args.tokens]
    events = load_events(args.file)
    pos = 0
    for component, event in tokens:
        while pos < len(events) and not matches(events[pos], component, event):
            pos += 1
        if pos == len(events):
            fail(f"'{component}:{event}' not found in order "
                 f"(after {args.tokens.index(f'{component}:{event}')} matched)")
        pos += 1
    print(f"order OK: {len(tokens)} token(s)")
    return 0


def cmd_deadline(args):
    first_c, first_e = parse_token(args.first)
    second_c, second_e = parse_token(args.second)
    events = load_events(args.file)
    last_first_t = None
    pairs = 0
    worst = None
    for ev in events:
        if matches(ev, first_c, first_e):
            last_first_t = ev.get("t_us", 0)
        elif matches(ev, second_c, second_e):
            t = ev.get("t_us", 0)
            if last_first_t is None:
                fail(f"'{args.second}' at t_us={t} has no preceding "
                     f"'{args.first}'")
            gap = t - last_first_t
            if worst is None or gap > worst:
                worst = gap
            if gap > args.max_us:
                fail(f"deadline exceeded: '{args.second}' at t_us={t} is "
                     f"{gap} us after the latest '{args.first}' "
                     f"(max {args.max_us})")
            pairs += 1
    if args.require is not None and pairs < args.require:
        fail(f"only {pairs} pair(s) checked, required {args.require}")
    print(f"deadline OK: {pairs} pair(s), worst {worst if worst is not None else '-'} us "
          f"<= {args.max_us} us")
    return 0


def cmd_delta(args):
    values = []
    for ev in load_events(args.file):
        if not matches(ev, args.component, args.event):
            continue
        if args.field not in ev:
            fail(f"event at t_us={ev.get('t_us', 0)} lacks field '{args.field}'")
        values.append(ev[args.field])
    checked = 0
    for prev, cur in zip(values, values[1:]):
        d = cur - prev
        if args.min is not None and d < args.min:
            fail(f"delta {d} < min {args.min} ({prev} -> {cur})")
        if args.max is not None and d > args.max:
            fail(f"delta {d} > max {args.max} ({prev} -> {cur})")
        if args.monotonic == "incr" and d <= 0:
            fail(f"not strictly increasing: {prev} -> {cur}")
        if args.monotonic == "nondecr" and d < 0:
            fail(f"not non-decreasing: {prev} -> {cur}")
        if args.monotonic == "decr" and d >= 0:
            fail(f"not strictly decreasing: {prev} -> {cur}")
        if args.monotonic == "noninc" and d > 0:
            fail(f"not non-increasing: {prev} -> {cur}")
        checked += 1
    print(f"delta OK: {checked} step(s) over {len(values)} value(s)")
    return 0


def cmd_selftest(args):
    root = Path(args.dir)
    cases_path = root / "cases.txt"
    expect_path = Path(args.expect) if args.expect else root / "expected.txt"
    try:
        cases = cases_path.read_text(encoding="utf-8").splitlines()
        expected = expect_path.read_text(encoding="utf-8")
    except OSError as e:
        print(f"trace_check: selftest: {e}", file=sys.stderr)
        sys.exit(2)

    import io
    import contextlib

    out = io.StringIO()
    for raw in cases:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        argv = shlex.split(line)
        # File operands are relative to the selftest dir.
        argv = [str(root / a) if a.endswith(".jsonl") else a for a in argv]
        out.write(f"$ {line}\n")
        status = 0
        # Capture stderr too: assertion messages are part of the pinned
        # contract.
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(out):
            try:
                status = run(argv)
            except SystemExit as e:
                status = e.code if isinstance(e.code, int) else 1
        out.write(f"exit {status}\n")
    got = out.getvalue()
    if got != expected:
        print("trace_check: selftest output mismatch", file=sys.stderr)
        import difflib
        sys.stderr.writelines(difflib.unified_diff(
            expected.splitlines(keepends=True), got.splitlines(keepends=True),
            fromfile=str(expect_path), tofile="actual"))
        sys.exit(1)
    print(f"selftest OK: {expect_path}")
    return 0


def build_parser():
    ap = argparse.ArgumentParser(
        prog="trace_check.py",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = ap.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("filter")
    p.add_argument("file")
    p.add_argument("--component")
    p.add_argument("--event")
    p.set_defaults(func=cmd_filter)

    p = sub.add_parser("count")
    p.add_argument("file")
    p.add_argument("--component")
    p.add_argument("--event")
    p.add_argument("--min", type=int)
    p.add_argument("--max", type=int)
    p.set_defaults(func=cmd_count)

    p = sub.add_parser("order")
    p.add_argument("file")
    p.add_argument("tokens", nargs="+")
    p.set_defaults(func=cmd_order)

    p = sub.add_parser("deadline")
    p.add_argument("file")
    p.add_argument("--first", required=True)
    p.add_argument("--second", required=True)
    p.add_argument("--max-us", type=int, required=True, dest="max_us")
    p.add_argument("--require", type=int)
    p.set_defaults(func=cmd_deadline)

    p = sub.add_parser("delta")
    p.add_argument("file")
    p.add_argument("--component", required=True)
    p.add_argument("--event", required=True)
    p.add_argument("--field", required=True)
    p.add_argument("--min", type=float)
    p.add_argument("--max", type=float)
    p.add_argument("--monotonic", choices=["incr", "nondecr", "decr", "noninc"])
    p.set_defaults(func=cmd_delta)

    p = sub.add_parser("selftest")
    p.add_argument("dir")
    p.add_argument("--expect")
    p.set_defaults(func=cmd_selftest)

    return ap


def run(argv):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(run(sys.argv[1:]))
