#!/usr/bin/env python3
"""Compare two BENCH_<name>.json artifacts and fail on wall-time regression.

Usage:
    tools/bench_compare.py BASELINE.json CURRENT.json [--max-regress-pct PCT]

Points are matched by label; wall time is normalized per replication so a
baseline recorded with CELLFI_BENCH_REPS=4 compares cleanly against a
1-rep smoke run. Exit status 1 when any matched point regresses by more
than --max-regress-pct (default 20%), 2 on malformed input, 3 when the
current artifact has labels the baseline lacks — an uncompared point is
an unguarded point, and a silently-vacuous pass would hide it; re-record
the baseline or pass --allow-new-labels when the new points are expected
(a sweep legitimately gaining points mid-PR). Points present only in the
baseline are reported but never fail (sweeps may lose points).

Micro-benchmark wall times are noisy; 20% is deliberately loose — the gate
exists to catch the engine accidentally falling off its fast path (2-4x),
not 5% scheduler jitter.
"""

import argparse
import json
import math
import sys


def load_points(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    points = {}
    for p in doc.get("points", []):
        reps = max(int(p.get("reps", 1)), 1)
        points[p["label"]] = float(p["wall_s"]) / reps
    return doc.get("bench", "?"), points


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-regress-pct", type=float, default=20.0,
                    help="fail when per-rep wall time grows by more than this")
    ap.add_argument("--allow-new-labels", action="store_true",
                    help="tolerate labels present only in the current "
                         "artifact instead of failing with exit status 3")
    args = ap.parse_args()

    base_name, base = load_points(args.baseline)
    cur_name, cur = load_points(args.current)
    if base_name != cur_name:
        print(f"bench_compare: comparing different benches "
              f"({base_name} vs {cur_name})", file=sys.stderr)
        sys.exit(2)

    regressions = []
    missing_from_baseline = sorted(set(cur) - set(base))
    log_speedups = []
    for label in sorted(base):
        if label not in cur:
            print(f"  only in baseline: {label}")
            continue
        b, c = base[label], cur[label]
        if b <= 0:
            continue
        delta_pct = 100.0 * (c - b) / b
        speedup = b / c if c > 0 else float("inf")
        if math.isfinite(speedup) and speedup > 0:
            log_speedups.append(math.log(speedup))
        marker = ""
        if delta_pct > args.max_regress_pct:
            marker = "  <-- REGRESSION"
            regressions.append((label, delta_pct))
        print(f"  {label}: {b:.3f}s -> {c:.3f}s "
              f"({delta_pct:+.1f}%, {speedup:.2f}x){marker}")
    for label in missing_from_baseline:
        print(f"  only in current (no baseline, not compared): {label}")
    if missing_from_baseline and not args.allow_new_labels:
        print(f"bench_compare: {len(missing_from_baseline)} label(s) in "
              f"{base_name} have no baseline point — the comparison would be "
              f"vacuous for them. Re-record the baseline artifact or pass "
              f"--allow-new-labels if the new points are expected.",
              file=sys.stderr)
        sys.exit(3)
    if log_speedups:
        geomean = math.exp(sum(log_speedups) / len(log_speedups))
        print(f"  geometric-mean speedup over {len(log_speedups)} matched "
              f"label(s): {geomean:.2f}x")

    if regressions:
        print(f"bench_compare: {len(regressions)} point(s) regressed beyond "
              f"{args.max_regress_pct:.0f}% in {base_name}", file=sys.stderr)
        sys.exit(1)
    print(f"bench_compare: {base_name} OK "
          f"({len(set(base) & set(cur))} points within {args.max_regress_pct:.0f}%)")


if __name__ == "__main__":
    main()
