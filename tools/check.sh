#!/usr/bin/env bash
# check.sh — one-shot correctness gate for every PR.
#
# Runs, in order, failing fast on any regression:
#   1. check preset   : hardened warnings + -Werror build, ctest -L ci
#                       (unit tests + lint_test + lint_selftest)
#   2. sanitize preset: ASan+UBSan build, full ctest
#   3. clang-tidy     : tools/run_tidy.sh against the frozen baseline
#                       (skips cleanly when clang-tidy is not installed)
#
# Usage: tools/check.sh [--fast] [--bench] [--trace] [--chaos] [--shard]
#                       [--simd] [--purity] [--traffic] [--static]
#   --fast   skip the sanitizer stage (inner-loop use; CI runs everything)
#   --bench  additionally run the bench_smoke suite (1-rep end-to-end runs
#            of every sweep bench, including the bench_scale bit-identity
#            gate). Each fresh BENCH_*.json artifact is diffed against the
#            baseline directory (CELLFI_BENCH_BASELINE, default
#            bench/baselines/) with tools/bench_compare.py; a >20%
#            per-point wall-time regression fails the gate, while brand-new
#            labels are reported but pass (--allow-new-labels).
#   --trace  additionally run the observability suite (`ctest -L trace`:
#            golden trace, vacate trace checks, trace_check.py selftest)
#            under the ASan+UBSan build. Implies the sanitize configure
#            even with --fast.
#   --chaos  additionally run the chaos suite (`ctest -L chaos`: fault
#            plans, invariant checker, campaign bit-identity, sweep
#            supervisor) under the ASan+UBSan build. Implies the sanitize
#            configure even with --fast.
#   --shard  additionally build the sanitize-tsan preset and run the shard
#            suite (`ctest -L shard`: worker pool, neighbor graph, shard
#            grid, multi-threaded subframe bit-identity) under
#            ThreadSanitizer — the data-race gate for DESIGN.md §15.
#   --simd   additionally build the simd-off preset (CELLFI_SIMD=OFF,
#            scalar reference kernels) and run the SIMD parity suite
#            (`ctest -L simd`) in BOTH trees, threading a kernel-output
#            digest from the SIMD build to the scalar build
#            (CELLFI_SIMD_DIGEST_OUT/_EXPECT) — the cross-build
#            bit-identity gate for DESIGN.md §17.
#   --purity additionally run the phase-purity analyzer
#            (tools/cellfi_purity.py --repo . --strict-allow) against the
#            frozen (empty) baseline — the static proof of the DESIGN.md
#            §16 determinism contracts.
#   --traffic additionally run the aggregate-load suite (`ctest -L
#            traffic`: generator units, sensor bookkeeping, aggregate-vs-
#            full-sim cross-validation, flash-crowd hop trigger, golden
#            diurnal trace, tier bit-identity) under the ASan+UBSan build.
#            Implies the sanitize configure even with --fast.
#   --static run ONLY the static gates — determinism lint (--strict-allow),
#            clang-tidy vs baseline, and the purity analyzer — with a
#            configure-only cmake step for compile_commands.json and no
#            builds or sanitizers. Seconds, not minutes; the pre-push
#            inner loop.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$ROOT"

FAST=0
BENCH=0
TRACE=0
CHAOS=0
SHARD=0
SIMD=0
PURITY=0
TRAFFIC=0
STATIC=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --bench) BENCH=1 ;;
    --trace) TRACE=1 ;;
    --chaos) CHAOS=1 ;;
    --shard) SHARD=1 ;;
    --simd) SIMD=1 ;;
    --purity) PURITY=1 ;;
    --traffic) TRAFFIC=1 ;;
    --static) STATIC=1 ;;
    *) echo "check.sh: unknown argument '$arg'" >&2; exit 2 ;;
  esac
done

step() { printf '\n=== check.sh: %s ===\n' "$*"; }

if [[ "$STATIC" -eq 1 ]]; then
  step "configure only (check preset, for compile_commands.json)"
  cmake --preset check

  step "determinism lint (cellfi_lint.py --strict-allow)"
  python3 tools/cellfi_lint.py --repo "$ROOT" --strict-allow

  step "clang-tidy vs frozen baseline"
  tools/run_tidy.sh --build-dir "$ROOT/build-check"

  step "phase-purity analyzer vs frozen baseline"
  python3 tools/cellfi_purity.py --repo "$ROOT" --strict-allow \
    --build-dir "$ROOT/build-check"

  step "all static gates passed"
  exit 0
fi

step "configure + build (check preset: hardened warnings, -Werror)"
cmake --preset check
cmake --build --preset check -j "$(nproc)"

step "ctest -L ci (unit tests + determinism lint)"
ctest --preset check

if [[ "$FAST" -eq 0 ]]; then
  step "configure + build (sanitize preset: ASan+UBSan)"
  cmake --preset sanitize
  cmake --build --preset sanitize -j "$(nproc)"

  step "ctest (sanitize)"
  ctest --preset sanitize
else
  step "skipping sanitize stage (--fast)"
fi

if [[ "$TRACE" -eq 1 || "$CHAOS" -eq 1 || "$TRAFFIC" -eq 1 ]]; then
  if [[ "$FAST" -eq 1 ]]; then
    step "configure + build (sanitize preset, for --trace/--chaos/--traffic)"
    cmake --preset sanitize
    cmake --build --preset sanitize -j "$(nproc)"
  fi
fi

if [[ "$TRACE" -eq 1 ]]; then
  step "observability suite under ASan+UBSan (ctest -L trace)"
  ctest --test-dir "$ROOT/build-sanitize" -L trace --output-on-failure
fi

if [[ "$CHAOS" -eq 1 ]]; then
  step "chaos suite under ASan+UBSan (ctest -L chaos)"
  ctest --test-dir "$ROOT/build-sanitize" -L chaos --output-on-failure
fi

if [[ "$TRAFFIC" -eq 1 ]]; then
  step "aggregate-load traffic suite under ASan+UBSan (ctest -L traffic)"
  ctest --test-dir "$ROOT/build-sanitize" -L traffic --output-on-failure
fi

if [[ "$SHARD" -eq 1 ]]; then
  step "configure + build (sanitize-tsan preset, for --shard)"
  cmake --preset sanitize-tsan
  cmake --build --preset sanitize-tsan -j "$(nproc)"

  step "shard suite under ThreadSanitizer (ctest -L shard)"
  ctest --test-dir "$ROOT/build-sanitize-tsan" -L shard --output-on-failure
fi

if [[ "$SIMD" -eq 1 ]]; then
  step "configure + build (simd-off preset: CELLFI_SIMD=OFF scalar reference)"
  cmake --preset simd-off
  cmake --build --preset simd-off -j "$(nproc)"

  step "SIMD parity suite, CELLFI_SIMD=ON tree (ctest -L simd)"
  digest="$ROOT/build-check/simd_digest.txt"
  rm -f "$digest"
  CELLFI_SIMD_DIGEST_OUT="$digest" \
    ctest --test-dir "$ROOT/build-check" -L simd --output-on-failure

  step "SIMD parity suite, CELLFI_SIMD=OFF tree + cross-build digest"
  if [[ ! -s "$digest" ]]; then
    echo "check.sh: SIMD digest was not produced by the ON-tree suite" >&2
    exit 1
  fi
  CELLFI_SIMD_DIGEST_EXPECT="$digest" ctest --preset simd-off
  echo "cross-build kernel digest: $(cat "$digest")"
fi

step "clang-tidy vs frozen baseline"
tools/run_tidy.sh --build-dir "$ROOT/build-check"

if [[ "$PURITY" -eq 1 ]]; then
  step "phase-purity analyzer vs frozen baseline"
  python3 tools/cellfi_purity.py --repo "$ROOT" --strict-allow \
    --build-dir "$ROOT/build-check"
fi

if [[ "$BENCH" -eq 1 ]]; then
  step "bench_smoke suite (1-rep sweeps + bench_scale bit-identity gate)"
  ctest --test-dir "$ROOT/build-check" -C bench_smoke -L bench_smoke --output-on-failure

  # Default to the committed seed baselines; point CELLFI_BENCH_BASELINE
  # elsewhere (or at an empty dir) to compare against a local capture.
  BASELINE_DIR="${CELLFI_BENCH_BASELINE:-$ROOT/bench/baselines}"
  if [[ -d "$BASELINE_DIR" ]]; then
    step "bench wall-time comparison vs $BASELINE_DIR"
    compared=0
    for cur in "$ROOT"/build-check/bench/BENCH_*.json; do
      [[ -e "$cur" ]] || continue
      base="$BASELINE_DIR/$(basename "$cur")"
      if [[ -f "$base" ]]; then
        echo "-- $(basename "$cur")"
        # --allow-new-labels: freshly added bench points have no baseline
        # yet; they are listed, not failed (bench_compare's exit-3 path
        # would otherwise precede — and mask — the regression check).
        python3 tools/bench_compare.py --allow-new-labels "$base" "$cur"
        compared=$((compared + 1))
      else
        echo "-- $(basename "$cur"): no baseline, skipped"
      fi
    done
    echo "compared $compared artifact(s)"
  else
    echo "bench baseline dir $BASELINE_DIR missing — comparison skipped"
  fi
fi

step "all gates passed"
