#!/usr/bin/env bash
# check.sh — one-shot correctness gate for every PR.
#
# Runs, in order, failing fast on any regression:
#   1. check preset   : hardened warnings + -Werror build, ctest -L ci
#                       (unit tests + lint_test + lint_selftest)
#   2. sanitize preset: ASan+UBSan build, full ctest
#   3. clang-tidy     : tools/run_tidy.sh against the frozen baseline
#                       (skips cleanly when clang-tidy is not installed)
#
# Usage: tools/check.sh [--fast]
#   --fast  skip the sanitizer stage (inner-loop use; CI runs everything)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$ROOT"

FAST=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    *) echo "check.sh: unknown argument '$arg'" >&2; exit 2 ;;
  esac
done

step() { printf '\n=== check.sh: %s ===\n' "$*"; }

step "configure + build (check preset: hardened warnings, -Werror)"
cmake --preset check
cmake --build --preset check -j "$(nproc)"

step "ctest -L ci (unit tests + determinism lint)"
ctest --preset check

if [[ "$FAST" -eq 0 ]]; then
  step "configure + build (sanitize preset: ASan+UBSan)"
  cmake --preset sanitize
  cmake --build --preset sanitize -j "$(nproc)"

  step "ctest (sanitize)"
  ctest --preset sanitize
else
  step "skipping sanitize stage (--fast)"
fi

step "clang-tidy vs frozen baseline"
tools/run_tidy.sh --build-dir "$ROOT/build-check"

step "all gates passed"
