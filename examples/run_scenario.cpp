// Scenario runner CLI: run any evaluation scenario from a JSON config and
// emit a machine-readable JSON report (for plotting / scripting).
//
//   ./build/examples/run_scenario                 # built-in demo config
//   ./build/examples/run_scenario config.json     # config from file
//   ./build/examples/run_scenario --print-config  # dump the default config
//
// Config keys (all optional, defaults shown by --print-config):
//   tech: cellfi | lte | oracle | laa-lte | 80211af | 80211ac
//   workload: backlogged | web
//   propagation: hata-urban | suburban | indoor-5ghz
//   topology: {area_m, num_aps, clients_per_ap, client_radius_m}, seed, ...
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "cellfi/scenario/report.h"

using namespace cellfi;
using namespace cellfi::scenario;

int main(int argc, char** argv) {
  ScenarioConfig cfg;
  cfg.tech = Technology::kCellFi;
  cfg.propagation = PropagationKind::kSuburbanUhf;
  cfg.topology.num_aps = 8;
  cfg.topology.clients_per_ap = 4;
  cfg.topology.client_radius_m = 250.0;
  cfg.duration = 13 * kSecond;
  cfg.seed = 42;

  if (argc > 1 && std::string(argv[1]) == "--print-config") {
    std::printf("%s\n", ConfigToJson(cfg).Dump().c_str());
    return 0;
  }

  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream text;
    text << file.rdbuf();
    const auto parsed = ConfigFromJsonText(text.str());
    if (!parsed) {
      std::fprintf(stderr, "invalid config in %s\n", argv[1]);
      return 1;
    }
    cfg = *parsed;
  }

  std::fprintf(stderr, "running %s / %s: %d APs x %d clients, %.0f s ...\n",
               TechnologyName(cfg.tech), WorkloadName(cfg.workload),
               cfg.topology.num_aps, cfg.topology.clients_per_ap,
               ToSeconds(cfg.duration));
  const ScenarioResult result = RunScenario(cfg);

  json::Value report;
  report["config"] = ConfigToJson(cfg);
  report["result"] = ResultToJson(result);
  std::printf("%s\n", report.Dump().c_str());
  return 0;
}
