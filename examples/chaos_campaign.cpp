// Chaos campaign: a 4-AP PAWS fleet under a deterministic fault plan
// (DESIGN.md §14).
//
// The plan crashes every AP at t = 300 s (a thundering-herd
// re-registration storm once the 96 s reboots complete), browns the
// database out while the herd is re-registering, and then lands an
// incumbent on the fleet's channel (mass lease invalidation). The runtime
// invariant checker watches the whole run: transmit-while-leased, the
// ETSI 60 s vacate budget, and per-AP state sanity. The campaign is a
// pure function of (config, plan): the digest printed at the end is
// bit-identical on every run — and the same plan can be exported as JSON
// and replayed elsewhere.
//
// Build & run:  ./build/examples/chaos_campaign
#include <cstdio>
#include <iostream>

#include "cellfi/common/table.h"
#include "cellfi/scenario/chaos_campaign.h"

using namespace cellfi;
using namespace cellfi::scenario;

int main() {
  ChaosCampaignConfig cfg;
  cfg.num_aps = 4;
  cfg.plan.name = "herd-brownout-churn";
  // Herd crash: every AP process dies at once.
  cfg.plan.events.push_back({.kind = chaos::FaultKind::kApCrash,
                             .time = 300 * kSecond});
  // Database brownout right when the herd re-registers.
  cfg.plan.events.push_back({.kind = chaos::FaultKind::kDbBrownout,
                             .time = 390 * kSecond,
                             .duration = 30 * kSecond,
                             .magnitude = 0.3,
                             .latency = 500 * kMillisecond});
  // Incumbent lands on the channel the whole fleet leased.
  cfg.plan.events.push_back({.kind = chaos::FaultKind::kIncumbentArrive,
                             .time = 550 * kSecond,
                             .duration = 120 * kSecond,
                             .channel = 14});
  cfg.run_until = 800 * kSecond;

  std::printf("=== chaos campaign: %s ===\n\n", cfg.plan.name.c_str());
  std::printf("fault plan JSON (replayable):\n%s\n\n",
              cfg.plan.ToJsonText().c_str());

  const ChaosCampaignResult r = RunChaosCampaign(cfg);

  Table t({"ap", "crashes", "confirms", "delivered", "dropped", "state"});
  for (std::size_t ap = 0; ap < r.aps.size(); ++ap) {
    const ApOutcome& o = r.aps[ap];
    t.AddRow({std::to_string(ap), std::to_string(o.crashes),
              std::to_string(o.lease_confirms.size()),
              std::to_string(o.transport.delivered),
              std::to_string(o.transport.dropped_random +
                             o.transport.dropped_outage +
                             o.transport.dropped_brownout),
              o.final_radio_state == core::ApRadioState::kOn ? "on" : "off"});
  }
  t.Print(std::cout, "Per-AP outcome");

  std::printf("\nfaults injected:   %llu\n",
              static_cast<unsigned long long>(r.faults_injected));
  std::printf("invariant checks:  %llu\n",
              static_cast<unsigned long long>(r.invariant_checks));
  std::printf("violations:        %zu\n", r.violations.size());
  for (const auto& v : r.violations) {
    std::printf("  VIOLATION t=%.1f s ap=%d %s: %s\n", ToSeconds(v.time),
                v.instance, chaos::InvariantKindName(v.kind), v.detail.c_str());
  }
  std::printf("campaign digest:   %016llx  (bit-stable across runs)\n",
              static_cast<unsigned long long>(r.Digest()));
  return r.violations.empty() ? 0 : 1;
}
