// Database outage: what happens to a CellFi AP when the TVWS database
// becomes unreachable (Fig. 6 machinery under transport failure).
//
// Two runs of the same scenario:
//   * 30 s outage -- shorter than the ETSI 60 s vacate budget. The session
//     degrades onto its cached lease and the AP rides the outage out
//     without a single dropped transmission window.
//   * 90 s outage -- the budget expires with no fresh confirmation. The AP
//     goes dark exactly 60 s after its last confirmed lease, then reboots
//     back onto the channel once the database answers again.
//
// Build & run:  ./build/examples/database_outage
#include <cstdio>
#include <iostream>

#include "cellfi/common/table.h"
#include "cellfi/scenario/outage.h"

using namespace cellfi;
using namespace cellfi::scenario;

namespace {

bool RunOne(SimTime outage_duration) {
  OutageScenarioConfig cfg;
  cfg.outage_start = 300 * kSecond;
  cfg.outage_duration = outage_duration;
  cfg.run_until = cfg.outage_start + cfg.outage_duration + 600 * kSecond;
  const OutageScenarioResult r = RunDatabaseOutage(cfg);

  std::printf("=== database outage: %.0f s (t = 0 at outage start) ===\n",
              ToSeconds(outage_duration));

  Table t({"t_rel_s", "event", "channel"});
  for (const auto& e : r.timeline) {
    if (e.time < r.outage_start - 5 * kSecond) continue;
    t.AddRow({Table::Num(ToSeconds(e.time - r.outage_start), 1), e.what,
              e.channel >= 0 ? std::to_string(e.channel) : "-"});
  }
  t.Print(std::cout, "Vacate / reacquire timeline");

  Table s({"quantity", "value"});
  s.AddRow({"last lease confirm before outage",
            Table::Num(ToSeconds(r.last_confirm_before_outage - r.outage_start), 1) +
                " s"});
  s.AddRow({"ap_off", r.ap_off_at >= 0
                          ? Table::Num(ToSeconds(r.ap_off_at - r.outage_start), 1) + " s"
                          : std::string("never (rode the outage out)")});
  s.AddRow({"reacquired (ap_on)",
            r.reacquired_at >= 0
                ? Table::Num(ToSeconds(r.reacquired_at - r.outage_start), 1) + " s"
                : std::string("n/a")});
  s.AddRow({"final session state", tvws::SessionStateName(r.final_state)});
  s.AddRow({"logical requests / wire attempts",
            std::to_string(r.session.requests) + " / " + std::to_string(r.session.attempts)});
  s.AddRow({"retries / timeouts", std::to_string(r.session.retries) + " / " +
                                      std::to_string(r.session.timeouts)});
  s.AddRow({"requests dropped by outage", std::to_string(r.transport.dropped_outage)});
  s.AddRow({"session state changes", std::to_string(r.session.state_changes)});
  s.Print(std::cout, "Session summary");

  // The ETSI EN 301 598 invariant: transmissions never continue more than
  // the vacate budget past the last confirmed lease.
  const SimTime budget = cfg.selector.etsi_vacate_budget;
  bool ok = true;
  if (outage_duration > budget) {
    ok = r.ap_off_at >= 0 && r.ap_off_at <= r.last_confirm_before_outage + budget &&
         r.reacquired_at >= 0;
    std::printf("ETSI check: off %.1f s after last confirm (budget %.0f s), "
                "reacquired %.1f s after recovery -> %s\n\n",
                ToSeconds(r.ap_off_at - r.last_confirm_before_outage), ToSeconds(budget),
                r.reacquired_at >= 0 ? ToSeconds(r.reacquired_at - r.outage_end) : -1.0,
                ok ? "OK" : "VIOLATION");
  } else {
    ok = r.rode_through;
    std::printf("short outage: cached lease carried the AP through -> %s\n\n",
                ok ? "OK" : "UNEXPECTED VACATE");
  }
  return ok;
}

}  // namespace

int main() {
  std::printf("CellFi database-outage demo -- ETSI vacate budget under transport "
              "failure\n\n");
  const bool short_ok = RunOne(30 * kSecond);
  const bool long_ok = RunOne(90 * kSecond);
  return short_ok && long_ok ? 0 : 1;
}
