// Primary-user protection: a wireless microphone registers in the TVWS
// database for a two-hour event on the channel a CellFi AP is using. The
// AP must vacate within the ETSI 60-second budget, retune to another
// channel, and carry on — the Fig. 6 machinery in a realistic scenario.
#include <cstdio>

#include "cellfi/core/channel_selector.h"

using namespace cellfi;
using namespace cellfi::core;
using namespace cellfi::tvws;

int main() {
  std::printf("CellFi primary-user demo -- wireless microphone takes the channel\n\n");

  const GeoLocation venue{.latitude = 47.64, .longitude = -122.13};
  Simulator sim;
  SpectrumDatabase db;
  // Most of the band is already held by TV stations; two channels free.
  for (int ch = 14; ch <= 51; ++ch) {
    if (ch == 21 || ch == 36) continue;
    db.AddIncumbent({.id = "tv-" + std::to_string(ch), .channel = ch,
                     .location = venue, .protection_radius_m = 100'000});
  }
  PawsServer server(db);
  InProcessTransport transport(sim, server);
  PawsClient client({.serial_number = "cellfi-ap-7"}, Regulatory::kUs);
  PawsSession session(sim, client, transport);
  QuietScanner scanner;
  ChannelSelectorConfig cfg;
  cfg.location = venue;
  ChannelSelector ap(sim, session, scanner, cfg);
  ap.Start();

  sim.RunUntil(200 * kSecond);
  if (!ap.current_channel()) {
    std::printf("no channel found\n");
    return 1;
  }
  const int in_use = ap.current_channel()->channel.number;
  std::printf("AP on air on channel %d, clients connected: %s\n\n", in_use,
              ap.clients_connected() ? "yes" : "no");

  // The microphone event: 2 hours on the channel we are using.
  const SimTime event_start = sim.Now() + 60 * kSecond;
  const SimTime event_end = event_start + 2 * 3600 * kSecond;
  db.AddIncumbent({.id = "wireless-mic", .channel = in_use, .location = venue,
                   .protection_radius_m = 1'000, .start = event_start,
                   .stop = event_end});
  std::printf("wireless microphone registered on channel %d for 2 h starting t+60 s\n",
              in_use);

  sim.RunUntil(event_start + 600 * kSecond);

  std::printf("\ntimeline (t = 0 at microphone start):\n");
  SimTime vacated_at = -1;
  for (const auto& e : ap.timeline()) {
    if (e.time < event_start - 10 * kSecond) continue;
    std::printf("  %+8.1f s  %-28s channel %d\n", ToSeconds(e.time - event_start),
                e.what.c_str(), e.channel);
    if (e.what == "ap_off" && vacated_at < 0) vacated_at = e.time;
  }

  const bool compliant = vacated_at >= 0 && vacated_at - event_start <= 60 * kSecond;
  std::printf("\nETSI EN 301 598 compliance: vacated %.1f s after the incumbent appeared "
              "(budget 60 s) -> %s\n",
              vacated_at >= 0 ? ToSeconds(vacated_at - event_start) : -1.0,
              compliant ? "OK" : "VIOLATION");
  if (ap.current_channel()) {
    std::printf("service continues on channel %d; the microphone never saw a single "
                "CellFi transmission after the lease ended.\n",
                ap.current_channel()->channel.number);
  }
  return compliant ? 0 : 1;
}
