// Rural coverage study: the paper's deployed use case (Section 6) — one
// CellFi access point serving under-privileged households with no
// broadband, from a rooftop, over a TVWS channel.
//
// Sweeps households at increasing distance and reports whether the Section
// 2 requirements hold: >= 1 km range with >= 1 Mbps per user.
#include <cstdio>
#include <vector>

#include "cellfi/lte/network.h"
#include "cellfi/radio/pathloss.h"

using namespace cellfi;

namespace {

struct SurveyPoint {
  double snr_db = 0;
  int cqi = 0;
  double capacity_mbps = 0;
};

// Measure one household's achievable rate with the cell to itself (a
// drive-test style coverage survey, like the paper's Fig. 1 walk).
SurveyPoint Survey(double distance_m, std::uint64_t seed) {
  HataUrbanPathLoss pathloss(15.0, 1.5);  // 15 m rooftop, 1.5 m client
  RadioEnvironmentConfig env_cfg;
  env_cfg.carrier_freq_hz = 600e6;
  env_cfg.shadowing_sigma_db = 6.0;
  env_cfg.seed = seed;
  Simulator sim;
  RadioEnvironment env(pathloss, env_cfg);

  // 29 dBm PA + 7 dBi sector antenna toward the village = 36 dBm EIRP.
  const RadioNodeId ap = env.AddNode({.position = {0, 0},
                                      .antenna = Antenna::Sector(7.0, 0.0, 2.1),
                                      .tx_power_dbm = 29.0});
  const RadioNodeId radio =
      env.AddNode({.position = {distance_m, 0}, .tx_power_dbm = 20.0});

  lte::LteNetwork net(sim, env, {});
  lte::LteMacConfig mac;
  net.AddCell(mac, ap);
  const lte::UeId ue = net.AddUe(radio);

  sim.SchedulePeriodic(500 * kMillisecond, [&] { net.OfferDownlink(ue, 2 << 20); });
  net.Start();
  sim.RunUntil(8 * kSecond);

  SurveyPoint p;
  p.snr_db = net.ServingSnrDb(ue);
  const auto& info = net.ue(ue);
  if (info.serving != lte::kInvalidCell) {
    const auto* ctx = net.cell(info.serving).FindUe(ue);
    if (ctx != nullptr) {
      p.cqi = ctx->wideband_cqi();
      p.capacity_mbps = static_cast<double>(ctx->dl_delivered_bits) / 8e6;
    }
  }
  return p;
}

}  // namespace

int main() {
  std::printf("CellFi rural coverage survey -- one rooftop AP, 36 dBm EIRP, 5 MHz TVWS\n\n");
  std::printf("%10s %10s %6s %16s %s\n", "distance", "SNR dB", "CQI", "capacity Mbps",
              "meets 1 Mbps?");
  int covered = 0, points = 0;
  for (double d : {200.0, 400.0, 600.0, 800.0, 1000.0, 1200.0, 1400.0}) {
    const SurveyPoint p = Survey(d, static_cast<std::uint64_t>(d) + 7);
    const bool ok = p.capacity_mbps >= 1.0;
    ++points;
    covered += ok;
    std::printf("%8.0f m %10.1f %6d %16.2f %s\n", d, p.snr_db, p.cqi, p.capacity_mbps,
                ok ? "yes" : "no");
  }
  std::printf("\n%d/%d surveyed households can sustain 1 Mbps (paper Section 2: >= 1 km\n"
              "range with >= 1 Mbps; distant households lean on low code rates + HARQ,\n"
              "the LTE PHY features Table 1 credits for long range)\n",
              covered, points);
  return 0;
}
