// Quickstart: bring up one CellFi access point end-to-end.
//
//  1. Lease a TVWS channel from the spectrum database over PAWS.
//  2. Start an LTE cell on that channel with the CellFi interference
//     manager attached.
//  3. Attach two clients, run downlink traffic, print what happened.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "cellfi/core/cellfi_controller.h"
#include "cellfi/core/channel_selector.h"
#include "cellfi/lte/network.h"
#include "cellfi/radio/pathloss.h"

using namespace cellfi;

int main() {
  Simulator sim;

  // --- 1. Spectrum database + channel selection --------------------------
  tvws::SpectrumDatabase db;  // US channels 14..51, nothing protected yet
  db.AddIncumbent({.id = "tv-station", .channel = 14,
                   .location = {47.60, -122.30}, .protection_radius_m = 50'000});
  tvws::PawsServer dbserver(db);
  tvws::InProcessTransport transport(sim, dbserver);
  tvws::PawsClient dbclient({.serial_number = "quickstart-ap"}, tvws::Regulatory::kUs);
  tvws::PawsSession session(sim, dbclient, transport);
  core::QuietScanner scanner;
  core::ChannelSelectorConfig sel_cfg;
  sel_cfg.location = {47.64, -122.13};  // inside the TV station's contour
  core::ChannelSelector selector(sim, session, scanner, sel_cfg);
  selector.Start();
  sim.RunUntil(200 * kSecond);  // AP boot + client cell search

  if (!selector.current_channel()) {
    std::printf("no channel available - cannot start\n");
    return 1;
  }
  const auto channel = *selector.current_channel();
  std::printf("leased TV channel %d (%.1f MHz, max %g dBm EIRP, blocked ch14)\n",
              channel.channel.number, channel.channel.CentreFrequencyHz() / 1e6,
              channel.max_eirp_dbm);

  // --- 2. Radio environment + LTE cell ------------------------------------
  HataUrbanPathLoss pathloss;
  RadioEnvironmentConfig env_cfg;
  env_cfg.carrier_freq_hz = channel.channel.CentreFrequencyHz();
  RadioEnvironment env(pathloss, env_cfg);

  const RadioNodeId ap = env.AddNode({.position = {0, 0},
                                      .antenna = Antenna::Omni(6.0),
                                      .tx_power_dbm = 30.0});
  const RadioNodeId phone1 = env.AddNode({.position = {150, 80}, .tx_power_dbm = 20.0});
  const RadioNodeId phone2 = env.AddNode({.position = {700, -200}, .tx_power_dbm = 20.0});

  lte::LteNetwork net(sim, env, {});
  lte::LteMacConfig mac;  // 5 MHz TDD config 4 - the paper's setup
  net.AddCell(mac, ap);
  const lte::UeId ue1 = net.AddUe(phone1);
  const lte::UeId ue2 = net.AddUe(phone2);

  // --- 3. CellFi interference management ---------------------------------
  core::CellfiController controller(sim, net, {});
  controller.Start();

  // --- 4. Traffic ----------------------------------------------------------
  sim.SchedulePeriodic(500 * kMillisecond, [&] {
    net.OfferDownlink(ue1, 2 << 20);
    net.OfferDownlink(ue2, 2 << 20);
  });
  net.Start();
  const SimTime t0 = sim.Now();
  sim.RunUntil(t0 + 10 * kSecond);

  for (lte::UeId ue : {ue1, ue2}) {
    const auto& info = net.ue(ue);
    const auto* ctx =
        info.serving != lte::kInvalidCell ? net.cell(info.serving).FindUe(ue) : nullptr;
    const double mbps =
        ctx != nullptr ? static_cast<double>(ctx->dl_delivered_bits) / 10e6 : 0.0;
    std::printf("client %d: %s, SNR %.1f dB, downlink %.2f Mbps\n", ue,
                info.state == lte::UeState::kConnected ? "connected" : "not connected",
                net.ServingSnrDb(ue), mbps);
  }
  std::printf("interference manager: %d of 13 subchannels in use, %llu hops\n",
              controller.manager(0).owned_count(),
              static_cast<unsigned long long>(controller.total_hops()));
  return 0;
}
