// Hybrid control plane demo (paper Section 7): one operator owns several
// cells and coordinates them centrally over its own backhaul, while
// different operators coexist purely through CellFi's distributed
// interference management — no cross-operator messages, ever.
#include <cstdio>

#include "cellfi/core/hybrid_controller.h"
#include "cellfi/core/power_planner.h"
#include "cellfi/lte/network.h"
#include "cellfi/radio/pathloss.h"

using namespace cellfi;

int main() {
  std::printf("CellFi hybrid control plane -- operator A (2 cells) + operator B (1 cell)\n\n");

  HataUrbanPathLoss pathloss;
  RadioEnvironmentConfig env_cfg;
  env_cfg.carrier_freq_hz = 600e6;
  env_cfg.shadowing_sigma_db = 0.0;
  Simulator sim;
  RadioEnvironment env(pathloss, env_cfg);

  // Power planning: operator A sizes both its sites for 600 m cells rather
  // than blasting the regulatory cap — a smaller interference footprint
  // means smaller contender counts for everyone.
  core::CoverageTarget coverage;
  coverage.range_m = 600.0;
  bool achievable = false;
  const double planned_dbm =
      core::PlanTxPowerDbm(pathloss, env_cfg.carrier_freq_hz, coverage, 36.0, &achievable);
  std::printf("power planning: %.1f dBm EIRP covers %.0f m (cap 36 dBm, %s)\n\n",
              planned_dbm, coverage.range_m, achievable ? "achievable" : "capped");

  lte::LteNetwork net(sim, env, {});
  lte::LteMacConfig mac;
  const auto a1 = net.AddCell(mac, env.AddNode({.position = {0, 0}, .tx_power_dbm = planned_dbm}));
  const auto a2 =
      net.AddCell(mac, env.AddNode({.position = {600, 0}, .tx_power_dbm = planned_dbm}));
  const auto b1 =
      net.AddCell(mac, env.AddNode({.position = {300, 500}, .tx_power_dbm = planned_dbm}));

  std::vector<lte::UeId> ues;
  ues.push_back(net.AddUe(env.AddNode({.position = {150, 30}, .tx_power_dbm = 20.0}), a1));
  ues.push_back(net.AddUe(env.AddNode({.position = {320, -20}, .tx_power_dbm = 20.0}), a1));
  ues.push_back(net.AddUe(env.AddNode({.position = {450, 40}, .tx_power_dbm = 20.0}), a2));
  ues.push_back(net.AddUe(env.AddNode({.position = {700, 10}, .tx_power_dbm = 20.0}), a2));
  ues.push_back(net.AddUe(env.AddNode({.position = {280, 420}, .tx_power_dbm = 20.0}), b1));
  ues.push_back(net.AddUe(env.AddNode({.position = {380, 560}, .tx_power_dbm = 20.0}), b1));

  // Cells a1 and a2 belong to operator 0; b1 to operator 1.
  core::HybridControllerConfig cfg;
  cfg.base.seed = 5;
  core::HybridController hybrid(sim, net, {0, 0, 1}, cfg);
  hybrid.Start();

  sim.SchedulePeriodic(500 * kMillisecond, [&] {
    for (auto ue : ues) net.OfferDownlink(ue, 2 << 20);
  });
  net.Start();
  sim.RunUntil(15 * kSecond);

  auto print_mask = [&](const char* name, lte::CellId c) {
    std::printf("  %-14s [", name);
    for (bool b : net.cell(c).allowed_mask()) std::printf("%c", b ? '#' : '.');
    std::printf("]\n");
  };
  std::printf("effective subchannel masks after 15 s:\n");
  print_mask("operatorA/a1", a1);
  print_mask("operatorA/a2", a2);
  print_mask("operatorB/b1", b1);

  std::printf("\nintra-operator conflicts resolved centrally: %llu\n",
              static_cast<unsigned long long>(hybrid.conflicts_resolved()));
  std::printf("cross-operator coexistence: PRACH + CQI sensing only\n\n");

  for (auto ue : ues) {
    const auto* ctx = net.cell(net.ue(ue).serving).FindUe(ue);
    std::printf("client %d (cell %d): %.2f Mbps\n", ue, net.ue(ue).serving,
                ctx != nullptr ? static_cast<double>(ctx->dl_delivered_bits) / 15e6 : 0.0);
  }
  return 0;
}
