// Coexistence: two independent operators deploy CellFi access points in
// overlapping coverage — no X2, no coordination, not even awareness of
// each other. Watch the distributed interference management converge:
// PRACH counting establishes spectrum shares, CQI-based detection drains
// buckets on contested subchannels, and the masks disentangle.
#include <cstdio>

#include "cellfi/core/cellfi_controller.h"
#include "cellfi/lte/network.h"
#include "cellfi/radio/pathloss.h"

using namespace cellfi;

namespace {
void PrintMasks(const core::CellfiController& controller, SimTime now) {
  std::printf("t=%4.0fs  operatorA [", ToSeconds(now));
  for (int s = 0; s < 13; ++s) std::printf("%c", controller.manager(0).mask()[s] ? 'A' : '.');
  std::printf("]  operatorB [");
  for (int s = 0; s < 13; ++s) std::printf("%c", controller.manager(1).mask()[s] ? 'B' : '.');
  std::printf("]  hops=%llu\n", static_cast<unsigned long long>(controller.total_hops()));
}
}  // namespace

int main() {
  std::printf("CellFi coexistence demo -- two operators, one TV channel, zero coordination\n\n");

  HataUrbanPathLoss pathloss;
  RadioEnvironmentConfig env_cfg;
  env_cfg.carrier_freq_hz = 600e6;
  env_cfg.shadowing_sigma_db = 0.0;
  Simulator sim;
  RadioEnvironment env(pathloss, env_cfg);

  // Operator A on one rooftop, operator B 700 m away; their customers are
  // scattered between them, so the cells interfere strongly.
  const RadioNodeId ap_a = env.AddNode(
      {.position = {0, 0}, .antenna = Antenna::Omni(6.0), .tx_power_dbm = 30.0});
  const RadioNodeId ap_b = env.AddNode(
      {.position = {700, 0}, .antenna = Antenna::Omni(6.0), .tx_power_dbm = 30.0});

  lte::LteNetwork net(sim, env, {});
  lte::LteMacConfig mac;
  const lte::CellId cell_a = net.AddCell(mac, ap_a);
  const lte::CellId cell_b = net.AddCell(mac, ap_b);

  std::vector<lte::UeId> customers_a, customers_b;
  for (Point p : {Point{-120, 40}, Point{310, 30}, Point{220, -90}}) {
    customers_a.push_back(net.AddUe(env.AddNode({.position = p, .tx_power_dbm = 20.0}),
                                    cell_a));
  }
  for (Point p : {Point{830, -30}, Point{390, -40}, Point{480, 100}}) {
    customers_b.push_back(net.AddUe(env.AddNode({.position = p, .tx_power_dbm = 20.0}),
                                    cell_b));
  }

  core::CellfiController controller(sim, net, {});
  controller.Start();

  sim.SchedulePeriodic(500 * kMillisecond, [&] {
    for (auto ue : customers_a) net.OfferDownlink(ue, 2 << 20);
    for (auto ue : customers_b) net.OfferDownlink(ue, 2 << 20);
  });
  net.Start();

  std::printf("subchannel masks over time ('.' = left for others):\n");
  for (int t = 2; t <= 20; t += 2) {
    sim.RunUntil(static_cast<SimTime>(t) * kSecond);
    PrintMasks(controller, sim.Now());
  }

  std::printf("\ncontender estimates: A hears %d clients (own %d), B hears %d (own %d)\n",
              controller.sensor(cell_a).EstimateContenders(sim.Now()),
              controller.sensor(cell_a).OwnActive(sim.Now()),
              controller.sensor(cell_b).EstimateContenders(sim.Now()),
              controller.sensor(cell_b).OwnActive(sim.Now()));

  std::printf("\nper-customer downlink over the run:\n");
  auto report = [&](const char* who, const std::vector<lte::UeId>& ues, lte::CellId cell) {
    for (auto ue : ues) {
      const auto* ctx = net.cell(cell).FindUe(ue);
      std::printf("  %s client %d: %.2f Mbps\n", who, ue,
                  ctx != nullptr ? static_cast<double>(ctx->dl_delivered_bits) / 20e6 : 0.0);
    }
  };
  report("A", customers_a, cell_a);
  report("B", customers_b, cell_b);
  std::printf("\nno AP ever exchanged a message with the other: shares came from PRACH\n"
              "overhearing, contested subchannels from the clients' CQI reports.\n");
  return 0;
}
