# Empty dependencies file for bench_cqi_detector.
# This may be replaced when dependencies are built.
