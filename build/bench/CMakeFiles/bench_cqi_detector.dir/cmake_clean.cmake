file(REMOVE_RECURSE
  "CMakeFiles/bench_cqi_detector.dir/bench_cqi_detector.cc.o"
  "CMakeFiles/bench_cqi_detector.dir/bench_cqi_detector.cc.o.d"
  "bench_cqi_detector"
  "bench_cqi_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cqi_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
