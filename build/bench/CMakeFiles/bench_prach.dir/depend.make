# Empty dependencies file for bench_prach.
# This may be replaced when dependencies are built.
