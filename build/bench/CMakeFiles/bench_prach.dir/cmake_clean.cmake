file(REMOVE_RECURSE
  "CMakeFiles/bench_prach.dir/bench_prach.cc.o"
  "CMakeFiles/bench_prach.dir/bench_prach.cc.o.d"
  "bench_prach"
  "bench_prach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
