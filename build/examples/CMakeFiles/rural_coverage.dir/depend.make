# Empty dependencies file for rural_coverage.
# This may be replaced when dependencies are built.
