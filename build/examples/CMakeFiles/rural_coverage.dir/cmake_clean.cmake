file(REMOVE_RECURSE
  "CMakeFiles/rural_coverage.dir/rural_coverage.cpp.o"
  "CMakeFiles/rural_coverage.dir/rural_coverage.cpp.o.d"
  "rural_coverage"
  "rural_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rural_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
