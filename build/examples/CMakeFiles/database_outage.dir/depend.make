# Empty dependencies file for database_outage.
# This may be replaced when dependencies are built.
