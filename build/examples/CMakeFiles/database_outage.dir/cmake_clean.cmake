file(REMOVE_RECURSE
  "CMakeFiles/database_outage.dir/database_outage.cpp.o"
  "CMakeFiles/database_outage.dir/database_outage.cpp.o.d"
  "database_outage"
  "database_outage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_outage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
