# Empty compiler generated dependencies file for hybrid_operators.
# This may be replaced when dependencies are built.
