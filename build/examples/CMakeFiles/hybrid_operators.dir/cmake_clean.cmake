file(REMOVE_RECURSE
  "CMakeFiles/hybrid_operators.dir/hybrid_operators.cpp.o"
  "CMakeFiles/hybrid_operators.dir/hybrid_operators.cpp.o.d"
  "hybrid_operators"
  "hybrid_operators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
