file(REMOVE_RECURSE
  "CMakeFiles/primary_user.dir/primary_user.cpp.o"
  "CMakeFiles/primary_user.dir/primary_user.cpp.o.d"
  "primary_user"
  "primary_user.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primary_user.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
