# Empty dependencies file for primary_user.
# This may be replaced when dependencies are built.
