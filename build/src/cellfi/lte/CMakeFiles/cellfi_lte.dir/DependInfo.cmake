
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cellfi/lte/enodeb.cc" "src/cellfi/lte/CMakeFiles/cellfi_lte.dir/enodeb.cc.o" "gcc" "src/cellfi/lte/CMakeFiles/cellfi_lte.dir/enodeb.cc.o.d"
  "/root/repo/src/cellfi/lte/network.cc" "src/cellfi/lte/CMakeFiles/cellfi_lte.dir/network.cc.o" "gcc" "src/cellfi/lte/CMakeFiles/cellfi_lte.dir/network.cc.o.d"
  "/root/repo/src/cellfi/lte/scheduler.cc" "src/cellfi/lte/CMakeFiles/cellfi_lte.dir/scheduler.cc.o" "gcc" "src/cellfi/lte/CMakeFiles/cellfi_lte.dir/scheduler.cc.o.d"
  "/root/repo/src/cellfi/lte/ue_context.cc" "src/cellfi/lte/CMakeFiles/cellfi_lte.dir/ue_context.cc.o" "gcc" "src/cellfi/lte/CMakeFiles/cellfi_lte.dir/ue_context.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cellfi/common/CMakeFiles/cellfi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cellfi/sim/CMakeFiles/cellfi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cellfi/radio/CMakeFiles/cellfi_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/cellfi/phy/CMakeFiles/cellfi_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
