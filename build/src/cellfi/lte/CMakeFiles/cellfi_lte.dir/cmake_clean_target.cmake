file(REMOVE_RECURSE
  "libcellfi_lte.a"
)
