file(REMOVE_RECURSE
  "CMakeFiles/cellfi_lte.dir/enodeb.cc.o"
  "CMakeFiles/cellfi_lte.dir/enodeb.cc.o.d"
  "CMakeFiles/cellfi_lte.dir/network.cc.o"
  "CMakeFiles/cellfi_lte.dir/network.cc.o.d"
  "CMakeFiles/cellfi_lte.dir/scheduler.cc.o"
  "CMakeFiles/cellfi_lte.dir/scheduler.cc.o.d"
  "CMakeFiles/cellfi_lte.dir/ue_context.cc.o"
  "CMakeFiles/cellfi_lte.dir/ue_context.cc.o.d"
  "libcellfi_lte.a"
  "libcellfi_lte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellfi_lte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
