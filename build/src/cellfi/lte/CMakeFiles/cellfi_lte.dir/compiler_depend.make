# Empty compiler generated dependencies file for cellfi_lte.
# This may be replaced when dependencies are built.
