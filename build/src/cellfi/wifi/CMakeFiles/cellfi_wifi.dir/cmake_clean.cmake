file(REMOVE_RECURSE
  "CMakeFiles/cellfi_wifi.dir/phy_rates.cc.o"
  "CMakeFiles/cellfi_wifi.dir/phy_rates.cc.o.d"
  "CMakeFiles/cellfi_wifi.dir/wifi_network.cc.o"
  "CMakeFiles/cellfi_wifi.dir/wifi_network.cc.o.d"
  "libcellfi_wifi.a"
  "libcellfi_wifi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellfi_wifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
