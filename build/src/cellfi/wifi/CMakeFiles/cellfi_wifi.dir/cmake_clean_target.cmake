file(REMOVE_RECURSE
  "libcellfi_wifi.a"
)
