# Empty dependencies file for cellfi_wifi.
# This may be replaced when dependencies are built.
