
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cellfi/wifi/phy_rates.cc" "src/cellfi/wifi/CMakeFiles/cellfi_wifi.dir/phy_rates.cc.o" "gcc" "src/cellfi/wifi/CMakeFiles/cellfi_wifi.dir/phy_rates.cc.o.d"
  "/root/repo/src/cellfi/wifi/wifi_network.cc" "src/cellfi/wifi/CMakeFiles/cellfi_wifi.dir/wifi_network.cc.o" "gcc" "src/cellfi/wifi/CMakeFiles/cellfi_wifi.dir/wifi_network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cellfi/common/CMakeFiles/cellfi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cellfi/sim/CMakeFiles/cellfi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cellfi/radio/CMakeFiles/cellfi_radio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
