file(REMOVE_RECURSE
  "CMakeFiles/cellfi_baseline.dir/hopping_game.cc.o"
  "CMakeFiles/cellfi_baseline.dir/hopping_game.cc.o.d"
  "CMakeFiles/cellfi_baseline.dir/oracle_allocator.cc.o"
  "CMakeFiles/cellfi_baseline.dir/oracle_allocator.cc.o.d"
  "libcellfi_baseline.a"
  "libcellfi_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellfi_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
