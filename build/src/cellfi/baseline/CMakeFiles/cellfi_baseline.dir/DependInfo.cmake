
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cellfi/baseline/hopping_game.cc" "src/cellfi/baseline/CMakeFiles/cellfi_baseline.dir/hopping_game.cc.o" "gcc" "src/cellfi/baseline/CMakeFiles/cellfi_baseline.dir/hopping_game.cc.o.d"
  "/root/repo/src/cellfi/baseline/oracle_allocator.cc" "src/cellfi/baseline/CMakeFiles/cellfi_baseline.dir/oracle_allocator.cc.o" "gcc" "src/cellfi/baseline/CMakeFiles/cellfi_baseline.dir/oracle_allocator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cellfi/common/CMakeFiles/cellfi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
