# Empty dependencies file for cellfi_baseline.
# This may be replaced when dependencies are built.
