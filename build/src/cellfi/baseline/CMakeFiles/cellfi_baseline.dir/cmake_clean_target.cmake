file(REMOVE_RECURSE
  "libcellfi_baseline.a"
)
