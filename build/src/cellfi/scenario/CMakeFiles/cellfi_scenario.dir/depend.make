# Empty dependencies file for cellfi_scenario.
# This may be replaced when dependencies are built.
