file(REMOVE_RECURSE
  "CMakeFiles/cellfi_scenario.dir/harness.cc.o"
  "CMakeFiles/cellfi_scenario.dir/harness.cc.o.d"
  "CMakeFiles/cellfi_scenario.dir/outage.cc.o"
  "CMakeFiles/cellfi_scenario.dir/outage.cc.o.d"
  "CMakeFiles/cellfi_scenario.dir/report.cc.o"
  "CMakeFiles/cellfi_scenario.dir/report.cc.o.d"
  "CMakeFiles/cellfi_scenario.dir/topology.cc.o"
  "CMakeFiles/cellfi_scenario.dir/topology.cc.o.d"
  "libcellfi_scenario.a"
  "libcellfi_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellfi_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
