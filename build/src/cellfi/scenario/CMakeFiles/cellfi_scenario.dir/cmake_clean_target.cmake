file(REMOVE_RECURSE
  "libcellfi_scenario.a"
)
