file(REMOVE_RECURSE
  "libcellfi_common.a"
)
