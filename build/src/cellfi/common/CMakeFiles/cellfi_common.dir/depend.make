# Empty dependencies file for cellfi_common.
# This may be replaced when dependencies are built.
