file(REMOVE_RECURSE
  "CMakeFiles/cellfi_common.dir/fft.cc.o"
  "CMakeFiles/cellfi_common.dir/fft.cc.o.d"
  "CMakeFiles/cellfi_common.dir/json.cc.o"
  "CMakeFiles/cellfi_common.dir/json.cc.o.d"
  "CMakeFiles/cellfi_common.dir/logging.cc.o"
  "CMakeFiles/cellfi_common.dir/logging.cc.o.d"
  "CMakeFiles/cellfi_common.dir/stats.cc.o"
  "CMakeFiles/cellfi_common.dir/stats.cc.o.d"
  "CMakeFiles/cellfi_common.dir/table.cc.o"
  "CMakeFiles/cellfi_common.dir/table.cc.o.d"
  "libcellfi_common.a"
  "libcellfi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellfi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
