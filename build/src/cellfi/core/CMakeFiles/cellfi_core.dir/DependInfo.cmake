
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cellfi/core/cellfi_controller.cc" "src/cellfi/core/CMakeFiles/cellfi_core.dir/cellfi_controller.cc.o" "gcc" "src/cellfi/core/CMakeFiles/cellfi_core.dir/cellfi_controller.cc.o.d"
  "/root/repo/src/cellfi/core/channel_selector.cc" "src/cellfi/core/CMakeFiles/cellfi_core.dir/channel_selector.cc.o" "gcc" "src/cellfi/core/CMakeFiles/cellfi_core.dir/channel_selector.cc.o.d"
  "/root/repo/src/cellfi/core/cqi_detector.cc" "src/cellfi/core/CMakeFiles/cellfi_core.dir/cqi_detector.cc.o" "gcc" "src/cellfi/core/CMakeFiles/cellfi_core.dir/cqi_detector.cc.o.d"
  "/root/repo/src/cellfi/core/hybrid_controller.cc" "src/cellfi/core/CMakeFiles/cellfi_core.dir/hybrid_controller.cc.o" "gcc" "src/cellfi/core/CMakeFiles/cellfi_core.dir/hybrid_controller.cc.o.d"
  "/root/repo/src/cellfi/core/interference_manager.cc" "src/cellfi/core/CMakeFiles/cellfi_core.dir/interference_manager.cc.o" "gcc" "src/cellfi/core/CMakeFiles/cellfi_core.dir/interference_manager.cc.o.d"
  "/root/repo/src/cellfi/core/power_planner.cc" "src/cellfi/core/CMakeFiles/cellfi_core.dir/power_planner.cc.o" "gcc" "src/cellfi/core/CMakeFiles/cellfi_core.dir/power_planner.cc.o.d"
  "/root/repo/src/cellfi/core/prach_sensor.cc" "src/cellfi/core/CMakeFiles/cellfi_core.dir/prach_sensor.cc.o" "gcc" "src/cellfi/core/CMakeFiles/cellfi_core.dir/prach_sensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cellfi/common/CMakeFiles/cellfi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cellfi/sim/CMakeFiles/cellfi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cellfi/tvws/CMakeFiles/cellfi_tvws.dir/DependInfo.cmake"
  "/root/repo/build/src/cellfi/lte/CMakeFiles/cellfi_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/cellfi/radio/CMakeFiles/cellfi_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/cellfi/phy/CMakeFiles/cellfi_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
