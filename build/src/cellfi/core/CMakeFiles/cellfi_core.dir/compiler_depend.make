# Empty compiler generated dependencies file for cellfi_core.
# This may be replaced when dependencies are built.
