file(REMOVE_RECURSE
  "libcellfi_core.a"
)
