file(REMOVE_RECURSE
  "CMakeFiles/cellfi_core.dir/cellfi_controller.cc.o"
  "CMakeFiles/cellfi_core.dir/cellfi_controller.cc.o.d"
  "CMakeFiles/cellfi_core.dir/channel_selector.cc.o"
  "CMakeFiles/cellfi_core.dir/channel_selector.cc.o.d"
  "CMakeFiles/cellfi_core.dir/cqi_detector.cc.o"
  "CMakeFiles/cellfi_core.dir/cqi_detector.cc.o.d"
  "CMakeFiles/cellfi_core.dir/hybrid_controller.cc.o"
  "CMakeFiles/cellfi_core.dir/hybrid_controller.cc.o.d"
  "CMakeFiles/cellfi_core.dir/interference_manager.cc.o"
  "CMakeFiles/cellfi_core.dir/interference_manager.cc.o.d"
  "CMakeFiles/cellfi_core.dir/power_planner.cc.o"
  "CMakeFiles/cellfi_core.dir/power_planner.cc.o.d"
  "CMakeFiles/cellfi_core.dir/prach_sensor.cc.o"
  "CMakeFiles/cellfi_core.dir/prach_sensor.cc.o.d"
  "libcellfi_core.a"
  "libcellfi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellfi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
