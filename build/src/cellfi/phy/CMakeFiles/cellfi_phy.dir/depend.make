# Empty dependencies file for cellfi_phy.
# This may be replaced when dependencies are built.
