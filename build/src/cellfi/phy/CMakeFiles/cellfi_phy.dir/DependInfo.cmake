
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cellfi/phy/cqi_mcs.cc" "src/cellfi/phy/CMakeFiles/cellfi_phy.dir/cqi_mcs.cc.o" "gcc" "src/cellfi/phy/CMakeFiles/cellfi_phy.dir/cqi_mcs.cc.o.d"
  "/root/repo/src/cellfi/phy/cqi_report.cc" "src/cellfi/phy/CMakeFiles/cellfi_phy.dir/cqi_report.cc.o" "gcc" "src/cellfi/phy/CMakeFiles/cellfi_phy.dir/cqi_report.cc.o.d"
  "/root/repo/src/cellfi/phy/harq.cc" "src/cellfi/phy/CMakeFiles/cellfi_phy.dir/harq.cc.o" "gcc" "src/cellfi/phy/CMakeFiles/cellfi_phy.dir/harq.cc.o.d"
  "/root/repo/src/cellfi/phy/ofdm.cc" "src/cellfi/phy/CMakeFiles/cellfi_phy.dir/ofdm.cc.o" "gcc" "src/cellfi/phy/CMakeFiles/cellfi_phy.dir/ofdm.cc.o.d"
  "/root/repo/src/cellfi/phy/prach.cc" "src/cellfi/phy/CMakeFiles/cellfi_phy.dir/prach.cc.o" "gcc" "src/cellfi/phy/CMakeFiles/cellfi_phy.dir/prach.cc.o.d"
  "/root/repo/src/cellfi/phy/resource_grid.cc" "src/cellfi/phy/CMakeFiles/cellfi_phy.dir/resource_grid.cc.o" "gcc" "src/cellfi/phy/CMakeFiles/cellfi_phy.dir/resource_grid.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cellfi/common/CMakeFiles/cellfi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
