file(REMOVE_RECURSE
  "CMakeFiles/cellfi_phy.dir/cqi_mcs.cc.o"
  "CMakeFiles/cellfi_phy.dir/cqi_mcs.cc.o.d"
  "CMakeFiles/cellfi_phy.dir/cqi_report.cc.o"
  "CMakeFiles/cellfi_phy.dir/cqi_report.cc.o.d"
  "CMakeFiles/cellfi_phy.dir/harq.cc.o"
  "CMakeFiles/cellfi_phy.dir/harq.cc.o.d"
  "CMakeFiles/cellfi_phy.dir/ofdm.cc.o"
  "CMakeFiles/cellfi_phy.dir/ofdm.cc.o.d"
  "CMakeFiles/cellfi_phy.dir/prach.cc.o"
  "CMakeFiles/cellfi_phy.dir/prach.cc.o.d"
  "CMakeFiles/cellfi_phy.dir/resource_grid.cc.o"
  "CMakeFiles/cellfi_phy.dir/resource_grid.cc.o.d"
  "libcellfi_phy.a"
  "libcellfi_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellfi_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
