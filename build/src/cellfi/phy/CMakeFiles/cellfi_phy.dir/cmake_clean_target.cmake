file(REMOVE_RECURSE
  "libcellfi_phy.a"
)
