file(REMOVE_RECURSE
  "libcellfi_radio.a"
)
