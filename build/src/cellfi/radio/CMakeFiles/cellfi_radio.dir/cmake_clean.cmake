file(REMOVE_RECURSE
  "CMakeFiles/cellfi_radio.dir/antenna.cc.o"
  "CMakeFiles/cellfi_radio.dir/antenna.cc.o.d"
  "CMakeFiles/cellfi_radio.dir/environment.cc.o"
  "CMakeFiles/cellfi_radio.dir/environment.cc.o.d"
  "CMakeFiles/cellfi_radio.dir/fading.cc.o"
  "CMakeFiles/cellfi_radio.dir/fading.cc.o.d"
  "CMakeFiles/cellfi_radio.dir/mobility.cc.o"
  "CMakeFiles/cellfi_radio.dir/mobility.cc.o.d"
  "CMakeFiles/cellfi_radio.dir/pathloss.cc.o"
  "CMakeFiles/cellfi_radio.dir/pathloss.cc.o.d"
  "libcellfi_radio.a"
  "libcellfi_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellfi_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
