# Empty dependencies file for cellfi_radio.
# This may be replaced when dependencies are built.
