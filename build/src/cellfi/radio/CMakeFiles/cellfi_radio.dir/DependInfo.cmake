
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cellfi/radio/antenna.cc" "src/cellfi/radio/CMakeFiles/cellfi_radio.dir/antenna.cc.o" "gcc" "src/cellfi/radio/CMakeFiles/cellfi_radio.dir/antenna.cc.o.d"
  "/root/repo/src/cellfi/radio/environment.cc" "src/cellfi/radio/CMakeFiles/cellfi_radio.dir/environment.cc.o" "gcc" "src/cellfi/radio/CMakeFiles/cellfi_radio.dir/environment.cc.o.d"
  "/root/repo/src/cellfi/radio/fading.cc" "src/cellfi/radio/CMakeFiles/cellfi_radio.dir/fading.cc.o" "gcc" "src/cellfi/radio/CMakeFiles/cellfi_radio.dir/fading.cc.o.d"
  "/root/repo/src/cellfi/radio/mobility.cc" "src/cellfi/radio/CMakeFiles/cellfi_radio.dir/mobility.cc.o" "gcc" "src/cellfi/radio/CMakeFiles/cellfi_radio.dir/mobility.cc.o.d"
  "/root/repo/src/cellfi/radio/pathloss.cc" "src/cellfi/radio/CMakeFiles/cellfi_radio.dir/pathloss.cc.o" "gcc" "src/cellfi/radio/CMakeFiles/cellfi_radio.dir/pathloss.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cellfi/common/CMakeFiles/cellfi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
