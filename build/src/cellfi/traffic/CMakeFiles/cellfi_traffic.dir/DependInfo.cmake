
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cellfi/traffic/flow_tracker.cc" "src/cellfi/traffic/CMakeFiles/cellfi_traffic.dir/flow_tracker.cc.o" "gcc" "src/cellfi/traffic/CMakeFiles/cellfi_traffic.dir/flow_tracker.cc.o.d"
  "/root/repo/src/cellfi/traffic/web_workload.cc" "src/cellfi/traffic/CMakeFiles/cellfi_traffic.dir/web_workload.cc.o" "gcc" "src/cellfi/traffic/CMakeFiles/cellfi_traffic.dir/web_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cellfi/common/CMakeFiles/cellfi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cellfi/sim/CMakeFiles/cellfi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
