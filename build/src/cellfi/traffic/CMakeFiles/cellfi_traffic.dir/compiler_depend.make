# Empty compiler generated dependencies file for cellfi_traffic.
# This may be replaced when dependencies are built.
