file(REMOVE_RECURSE
  "libcellfi_traffic.a"
)
