file(REMOVE_RECURSE
  "CMakeFiles/cellfi_traffic.dir/flow_tracker.cc.o"
  "CMakeFiles/cellfi_traffic.dir/flow_tracker.cc.o.d"
  "CMakeFiles/cellfi_traffic.dir/web_workload.cc.o"
  "CMakeFiles/cellfi_traffic.dir/web_workload.cc.o.d"
  "libcellfi_traffic.a"
  "libcellfi_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellfi_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
