file(REMOVE_RECURSE
  "CMakeFiles/cellfi_sim.dir/event_queue.cc.o"
  "CMakeFiles/cellfi_sim.dir/event_queue.cc.o.d"
  "libcellfi_sim.a"
  "libcellfi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellfi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
