file(REMOVE_RECURSE
  "libcellfi_sim.a"
)
