# Empty compiler generated dependencies file for cellfi_sim.
# This may be replaced when dependencies are built.
