
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cellfi/tvws/database.cc" "src/cellfi/tvws/CMakeFiles/cellfi_tvws.dir/database.cc.o" "gcc" "src/cellfi/tvws/CMakeFiles/cellfi_tvws.dir/database.cc.o.d"
  "/root/repo/src/cellfi/tvws/paws.cc" "src/cellfi/tvws/CMakeFiles/cellfi_tvws.dir/paws.cc.o" "gcc" "src/cellfi/tvws/CMakeFiles/cellfi_tvws.dir/paws.cc.o.d"
  "/root/repo/src/cellfi/tvws/paws_session.cc" "src/cellfi/tvws/CMakeFiles/cellfi_tvws.dir/paws_session.cc.o" "gcc" "src/cellfi/tvws/CMakeFiles/cellfi_tvws.dir/paws_session.cc.o.d"
  "/root/repo/src/cellfi/tvws/paws_transport.cc" "src/cellfi/tvws/CMakeFiles/cellfi_tvws.dir/paws_transport.cc.o" "gcc" "src/cellfi/tvws/CMakeFiles/cellfi_tvws.dir/paws_transport.cc.o.d"
  "/root/repo/src/cellfi/tvws/types.cc" "src/cellfi/tvws/CMakeFiles/cellfi_tvws.dir/types.cc.o" "gcc" "src/cellfi/tvws/CMakeFiles/cellfi_tvws.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cellfi/common/CMakeFiles/cellfi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cellfi/sim/CMakeFiles/cellfi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
