file(REMOVE_RECURSE
  "libcellfi_tvws.a"
)
