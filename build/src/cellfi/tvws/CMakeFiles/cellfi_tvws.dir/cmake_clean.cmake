file(REMOVE_RECURSE
  "CMakeFiles/cellfi_tvws.dir/database.cc.o"
  "CMakeFiles/cellfi_tvws.dir/database.cc.o.d"
  "CMakeFiles/cellfi_tvws.dir/paws.cc.o"
  "CMakeFiles/cellfi_tvws.dir/paws.cc.o.d"
  "CMakeFiles/cellfi_tvws.dir/paws_session.cc.o"
  "CMakeFiles/cellfi_tvws.dir/paws_session.cc.o.d"
  "CMakeFiles/cellfi_tvws.dir/paws_transport.cc.o"
  "CMakeFiles/cellfi_tvws.dir/paws_transport.cc.o.d"
  "CMakeFiles/cellfi_tvws.dir/types.cc.o"
  "CMakeFiles/cellfi_tvws.dir/types.cc.o.d"
  "libcellfi_tvws.a"
  "libcellfi_tvws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellfi_tvws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
