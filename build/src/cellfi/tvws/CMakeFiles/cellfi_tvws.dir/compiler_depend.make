# Empty compiler generated dependencies file for cellfi_tvws.
# This may be replaced when dependencies are built.
