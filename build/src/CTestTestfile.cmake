# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("cellfi/common")
subdirs("cellfi/sim")
subdirs("cellfi/radio")
subdirs("cellfi/phy")
subdirs("cellfi/tvws")
subdirs("cellfi/wifi")
subdirs("cellfi/lte")
subdirs("cellfi/core")
subdirs("cellfi/baseline")
subdirs("cellfi/traffic")
subdirs("cellfi/scenario")
