add_test([=[FullStackTest.LeaseServeVacateRetuneResume]=]  /root/repo/build/tests/full_stack_test [==[--gtest_filter=FullStackTest.LeaseServeVacateRetuneResume]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[FullStackTest.LeaseServeVacateRetuneResume]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  full_stack_test_TESTS FullStackTest.LeaseServeVacateRetuneResume)
