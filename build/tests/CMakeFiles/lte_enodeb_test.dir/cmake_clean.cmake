file(REMOVE_RECURSE
  "CMakeFiles/lte_enodeb_test.dir/lte_enodeb_test.cc.o"
  "CMakeFiles/lte_enodeb_test.dir/lte_enodeb_test.cc.o.d"
  "lte_enodeb_test"
  "lte_enodeb_test.pdb"
  "lte_enodeb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_enodeb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
