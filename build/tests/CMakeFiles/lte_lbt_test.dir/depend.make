# Empty dependencies file for lte_lbt_test.
# This may be replaced when dependencies are built.
