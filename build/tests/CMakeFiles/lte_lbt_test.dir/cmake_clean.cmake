file(REMOVE_RECURSE
  "CMakeFiles/lte_lbt_test.dir/lte_lbt_test.cc.o"
  "CMakeFiles/lte_lbt_test.dir/lte_lbt_test.cc.o.d"
  "lte_lbt_test"
  "lte_lbt_test.pdb"
  "lte_lbt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_lbt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
