# Empty compiler generated dependencies file for core_power_planner_test.
# This may be replaced when dependencies are built.
