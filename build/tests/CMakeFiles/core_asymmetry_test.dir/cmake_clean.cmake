file(REMOVE_RECURSE
  "CMakeFiles/core_asymmetry_test.dir/core_asymmetry_test.cc.o"
  "CMakeFiles/core_asymmetry_test.dir/core_asymmetry_test.cc.o.d"
  "core_asymmetry_test"
  "core_asymmetry_test.pdb"
  "core_asymmetry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_asymmetry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
