# Empty compiler generated dependencies file for core_asymmetry_test.
# This may be replaced when dependencies are built.
