file(REMOVE_RECURSE
  "CMakeFiles/scenario_report_test.dir/scenario_report_test.cc.o"
  "CMakeFiles/scenario_report_test.dir/scenario_report_test.cc.o.d"
  "scenario_report_test"
  "scenario_report_test.pdb"
  "scenario_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
