file(REMOVE_RECURSE
  "CMakeFiles/common_fft_test.dir/common_fft_test.cc.o"
  "CMakeFiles/common_fft_test.dir/common_fft_test.cc.o.d"
  "common_fft_test"
  "common_fft_test.pdb"
  "common_fft_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_fft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
