# Empty dependencies file for common_fft_test.
# This may be replaced when dependencies are built.
