# Empty dependencies file for core_interference_test.
# This may be replaced when dependencies are built.
