file(REMOVE_RECURSE
  "CMakeFiles/core_interference_test.dir/core_interference_test.cc.o"
  "CMakeFiles/core_interference_test.dir/core_interference_test.cc.o.d"
  "core_interference_test"
  "core_interference_test.pdb"
  "core_interference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_interference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
