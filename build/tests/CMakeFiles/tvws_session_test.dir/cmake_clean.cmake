file(REMOVE_RECURSE
  "CMakeFiles/tvws_session_test.dir/tvws_session_test.cc.o"
  "CMakeFiles/tvws_session_test.dir/tvws_session_test.cc.o.d"
  "tvws_session_test"
  "tvws_session_test.pdb"
  "tvws_session_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvws_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
