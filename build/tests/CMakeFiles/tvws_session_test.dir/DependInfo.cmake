
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tvws_session_test.cc" "tests/CMakeFiles/tvws_session_test.dir/tvws_session_test.cc.o" "gcc" "tests/CMakeFiles/tvws_session_test.dir/tvws_session_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cellfi/scenario/CMakeFiles/cellfi_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/cellfi/wifi/CMakeFiles/cellfi_wifi.dir/DependInfo.cmake"
  "/root/repo/build/src/cellfi/core/CMakeFiles/cellfi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cellfi/tvws/CMakeFiles/cellfi_tvws.dir/DependInfo.cmake"
  "/root/repo/build/src/cellfi/lte/CMakeFiles/cellfi_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/cellfi/radio/CMakeFiles/cellfi_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/cellfi/phy/CMakeFiles/cellfi_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/cellfi/baseline/CMakeFiles/cellfi_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/cellfi/traffic/CMakeFiles/cellfi_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/cellfi/sim/CMakeFiles/cellfi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cellfi/common/CMakeFiles/cellfi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
