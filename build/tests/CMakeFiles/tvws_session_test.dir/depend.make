# Empty dependencies file for tvws_session_test.
# This may be replaced when dependencies are built.
