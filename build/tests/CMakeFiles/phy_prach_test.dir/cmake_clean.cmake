file(REMOVE_RECURSE
  "CMakeFiles/phy_prach_test.dir/phy_prach_test.cc.o"
  "CMakeFiles/phy_prach_test.dir/phy_prach_test.cc.o.d"
  "phy_prach_test"
  "phy_prach_test.pdb"
  "phy_prach_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phy_prach_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
