# Empty dependencies file for phy_prach_test.
# This may be replaced when dependencies are built.
