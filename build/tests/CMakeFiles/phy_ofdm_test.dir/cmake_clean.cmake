file(REMOVE_RECURSE
  "CMakeFiles/phy_ofdm_test.dir/phy_ofdm_test.cc.o"
  "CMakeFiles/phy_ofdm_test.dir/phy_ofdm_test.cc.o.d"
  "phy_ofdm_test"
  "phy_ofdm_test.pdb"
  "phy_ofdm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phy_ofdm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
