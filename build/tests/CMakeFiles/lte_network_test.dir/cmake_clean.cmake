file(REMOVE_RECURSE
  "CMakeFiles/lte_network_test.dir/lte_network_test.cc.o"
  "CMakeFiles/lte_network_test.dir/lte_network_test.cc.o.d"
  "lte_network_test"
  "lte_network_test.pdb"
  "lte_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
