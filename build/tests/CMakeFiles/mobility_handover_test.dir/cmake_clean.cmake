file(REMOVE_RECURSE
  "CMakeFiles/mobility_handover_test.dir/mobility_handover_test.cc.o"
  "CMakeFiles/mobility_handover_test.dir/mobility_handover_test.cc.o.d"
  "mobility_handover_test"
  "mobility_handover_test.pdb"
  "mobility_handover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_handover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
