# Empty dependencies file for mobility_handover_test.
# This may be replaced when dependencies are built.
