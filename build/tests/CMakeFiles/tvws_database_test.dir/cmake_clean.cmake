file(REMOVE_RECURSE
  "CMakeFiles/tvws_database_test.dir/tvws_database_test.cc.o"
  "CMakeFiles/tvws_database_test.dir/tvws_database_test.cc.o.d"
  "tvws_database_test"
  "tvws_database_test.pdb"
  "tvws_database_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvws_database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
