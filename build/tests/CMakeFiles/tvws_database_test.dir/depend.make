# Empty dependencies file for tvws_database_test.
# This may be replaced when dependencies are built.
