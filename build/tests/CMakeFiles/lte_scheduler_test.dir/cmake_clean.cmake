file(REMOVE_RECURSE
  "CMakeFiles/lte_scheduler_test.dir/lte_scheduler_test.cc.o"
  "CMakeFiles/lte_scheduler_test.dir/lte_scheduler_test.cc.o.d"
  "lte_scheduler_test"
  "lte_scheduler_test.pdb"
  "lte_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
