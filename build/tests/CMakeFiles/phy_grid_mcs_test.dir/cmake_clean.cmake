file(REMOVE_RECURSE
  "CMakeFiles/phy_grid_mcs_test.dir/phy_grid_mcs_test.cc.o"
  "CMakeFiles/phy_grid_mcs_test.dir/phy_grid_mcs_test.cc.o.d"
  "phy_grid_mcs_test"
  "phy_grid_mcs_test.pdb"
  "phy_grid_mcs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phy_grid_mcs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
