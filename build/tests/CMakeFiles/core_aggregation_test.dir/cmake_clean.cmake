file(REMOVE_RECURSE
  "CMakeFiles/core_aggregation_test.dir/core_aggregation_test.cc.o"
  "CMakeFiles/core_aggregation_test.dir/core_aggregation_test.cc.o.d"
  "core_aggregation_test"
  "core_aggregation_test.pdb"
  "core_aggregation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_aggregation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
