# Empty compiler generated dependencies file for core_aggregation_test.
# This may be replaced when dependencies are built.
