// Section 6.3.3: blind PRACH detection.
//
// (1) Detection probability vs SNR for the frequency-domain blind detector
//     (no preamble index, no timing) — paper: reliable at -10 dB.
// (2) False-alarm rate on noise-only occasions.
// (3) Wall-clock speed against the required line rate: one PRACH occasion
//     per millisecond on a 10 MHz channel — paper: the modified detector
//     runs 16x faster than line rate on an i7.
#include <chrono>
#include <iostream>

#include "cellfi/common/table.h"
#include "cellfi/phy/prach.h"

using namespace cellfi;

int main() {
  std::cout << "CellFi reproduction -- Section 6.3.3 (blind PRACH detector)\n\n";

  PrachConfig cfg;
  PrachDetector detector(cfg);
  Rng rng(2024);

  Table t({"snr_db", "detection_rate", "correct_preamble_rate"});
  const int trials = 300;
  for (double snr : {-20.0, -16.0, -14.0, -12.0, -10.0, -8.0, -5.0, 0.0}) {
    int detected = 0, correct = 0;
    for (int i = 0; i < trials; ++i) {
      const int idx = i % NumPreambles(cfg);
      const int offset = i % cfg.cyclic_shift_step;  // inside the guard zone
      const auto rx = PassThroughAwgn(GeneratePreamble(cfg, idx), offset, snr, rng);
      const auto det = detector.Detect(rx);
      if (det.detected) {
        ++detected;
        if (det.preamble_estimate == idx) ++correct;
      }
    }
    t.AddRow({Table::Num(snr, 0), Table::Num(100.0 * detected / trials, 1) + "%",
              Table::Num(100.0 * correct / trials, 1) + "%"});
  }
  t.Print(std::cout, "Detection probability vs SNR (paper: reliable at -10 dB)");

  int false_alarms = 0;
  const int noise_trials = 2000;
  for (int i = 0; i < noise_trials; ++i) {
    if (detector.Detect(NoiseOnly(cfg.sequence_length, rng)).detected) ++false_alarms;
  }
  std::cout << "False alarms on noise-only occasions: " << false_alarms << "/"
            << noise_trials << "\n\n";

  // Speed: process occasions for ~1 s of wall clock and compare against the
  // 1-occasion-per-ms line rate.
  std::vector<std::vector<Complex>> occasions;
  for (int i = 0; i < 64; ++i) {
    occasions.push_back(PassThroughAwgn(GeneratePreamble(cfg, i), i % 13, -10.0, rng));
  }
  int processed = 0;
  const auto start = std::chrono::steady_clock::now();
  std::chrono::duration<double> elapsed{};
  do {
    for (const auto& occ : occasions) {
      detector.Detect(occ);
      ++processed;
    }
    elapsed = std::chrono::steady_clock::now() - start;
  } while (elapsed.count() < 1.0);

  const double per_second = processed / elapsed.count();
  const double line_rate = 1000.0;  // one PRACH occasion per 1 ms subframe
  Table s({"metric", "paper", "measured"});
  s.AddRow({"Occasions/s", "-", Table::Num(per_second, 0)});
  s.AddRow({"Speed vs line rate (1000/s)", "16x", Table::Num(per_second / line_rate, 1) + "x"});
  s.AddRow({"Correlations per occasion", "2 (blind)", "1 circular + peak test"});
  s.Print(std::cout, "Detector throughput (single core)");
  return 0;
}
