// Fig. 1: single-cell outdoor range experiment.
//  (a) TCP throughput vs distance     (paper: ~15 Mbps near, >=1 Mbps at
//      85 % of locations, range ~1.3 km at 36 dBm EIRP)
//  (b) CDF of coding rate used        (paper: median 1/2, uplink ~ downlink)
//  (c) CDF of fraction of channel     (paper: uplink mostly 1 RB - TCP ACKs)
//  plus the Section 3.1 HARQ observation: ~25 % of blocks beyond 500 m
//  retransmitted.
#include <iostream>

#include "cellfi/common/stats.h"
#include "cellfi/common/table.h"
#include "cellfi/lte/network.h"
#include "cellfi/radio/pathloss.h"

using namespace cellfi;

namespace {

struct PointResult {
  double distance_m = 0;
  double tcp_mbps = 0;
  double harq_fraction = 0;
  std::vector<double> dl_rates, ul_rates, dl_fracs, ul_fracs;
};

PointResult RunPoint(double distance, std::uint64_t seed) {
  HataUrbanPathLoss pathloss(15.0, 1.5);
  RadioEnvironmentConfig env_cfg;
  env_cfg.carrier_freq_hz = 600e6;
  env_cfg.shadowing_sigma_db = 6.0;
  env_cfg.enable_fading = true;
  env_cfg.seed = seed;
  Simulator sim;
  RadioEnvironment env(pathloss, env_cfg);

  // 36 dBm EIRP: 29 dBm PA + ~7 dBi sector antenna aimed along the path.
  const RadioNodeId ap = env.AddNode({.position = {0, 0},
                                      .antenna = Antenna::Sector(7.0, 0.0, 2.1),
                                      .tx_power_dbm = 29.0});
  const RadioNodeId ue_radio = env.AddNode({.position = {distance, 0},
                                            .tx_power_dbm = 20.0});

  lte::LteNetworkConfig net_cfg;
  net_cfg.seed = seed ^ 0xF1;
  lte::LteNetwork net(sim, env, net_cfg);
  lte::LteMacConfig mac;
  mac.bandwidth = LteBandwidth::k5MHz;
  mac.tdd_config = 4;
  net.AddCell(mac, ap);
  const lte::UeId ue = net.AddUe(ue_radio);

  std::uint64_t delivered = 0;
  SimTime measure_from = 500 * kMillisecond;
  net.on_dl_delivered = [&](lte::UeId, std::uint64_t bytes, SimTime now) {
    if (now >= measure_from) delivered += bytes;
  };
  sim.SchedulePeriodic(200 * kMillisecond, [&] { net.OfferDownlink(ue, 2 << 20); });
  net.Start();
  const SimTime total = 4 * kSecond;
  sim.RunUntil(total);

  PointResult r;
  r.distance_m = distance;
  // TCP goodput: MAC goodput minus TCP/IP header share on 1500 B segments.
  r.tcp_mbps = static_cast<double>(delivered) * 8.0 * (1460.0 / 1500.0) /
               ToSeconds(total - measure_from) / 1e6;
  if (net.ue(ue).serving != lte::kInvalidCell) {
    const auto* ctx = net.cell(net.ue(ue).serving).FindUe(ue);
    if (ctx != nullptr) {
      r.dl_rates = ctx->code_rate_log;
      r.ul_rates = ctx->ul_code_rate_log;
      r.dl_fracs = ctx->channel_fraction_log;
      r.ul_fracs = ctx->ul_channel_fraction_log;
      r.harq_fraction = ctx->dl_total_blocks
                            ? static_cast<double>(ctx->dl_harq_retx_blocks) /
                                  static_cast<double>(ctx->dl_total_blocks)
                            : 0.0;
    }
  }
  return r;
}

void PrintCdf(std::ostream& out, const std::string& title, Distribution& dl,
              Distribution& ul) {
  Table t({"percentile", "downlink", "uplink"});
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90}) {
    t.AddRow({Table::Num(q, 2), dl.empty() ? "-" : Table::Num(dl.Percentile(q), 3),
              ul.empty() ? "-" : Table::Num(ul.Percentile(q), 3)});
  }
  t.Print(out, title);
}

}  // namespace

int main() {
  std::cout << "CellFi reproduction -- Fig. 1 (LTE range experiment, 36 dBm EIRP, "
               "5 MHz TDD cfg 4, Hata urban @600 MHz)\n\n";

  Distribution dl_rates, ul_rates, dl_fracs, ul_fracs;
  Distribution tput_all;
  Summary harq_near, harq_far;
  int locations = 0, locations_above_1mbps = 0;

  Table a({"distance_m", "tcp_mbps", "harq_retx_frac"});
  for (double d = 100; d <= 1400; d += 100) {
    Summary tput, harq;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const PointResult r = RunPoint(d, seed * 101 + static_cast<std::uint64_t>(d));
      tput.Add(r.tcp_mbps);
      harq.Add(r.harq_fraction);
      dl_rates.AddAll(r.dl_rates);
      ul_rates.AddAll(r.ul_rates);
      dl_fracs.AddAll(r.dl_fracs);
      ul_fracs.AddAll(r.ul_fracs);
      ++locations;
      if (r.tcp_mbps >= 1.0) ++locations_above_1mbps;
      tput_all.Add(r.tcp_mbps);
      (d > 500 ? harq_far : harq_near).Add(r.harq_fraction);
    }
    a.AddRow({Table::Num(d, 0), Table::Num(tput.mean(), 2), Table::Num(harq.mean(), 2)});
  }
  a.Print(std::cout, "Fig. 1(a): TCP throughput vs distance");

  std::cout << "Locations with >= 1 Mbps: " << locations_above_1mbps << "/" << locations
            << " (" << Table::Num(100.0 * locations_above_1mbps / locations, 0)
            << "%; paper: 85% out to 1.3 km)\n\n";

  PrintCdf(std::cout, "Fig. 1(b): coding rate CDF (paper: median ~0.5)", dl_rates,
           ul_rates);
  PrintCdf(std::cout,
           "Fig. 1(c): fraction of channel used CDF (paper: uplink ~1 RB for ACKs)",
           dl_fracs, ul_fracs);

  std::cout << "HARQ retransmission fraction: <=500 m " << Table::Num(harq_near.mean(), 2)
            << ", >500 m " << Table::Num(harq_far.mean(), 2)
            << " (paper: ~25% of packets beyond 500 m use HARQ)\n";
  return 0;
}
