// Shared configuration for the Fig. 9 large-scale benches (paper Section
// 6.3.4): 2 km x 2 km, random AP placement, 5 MHz LTE TDD config 4 /
// 6 MHz Wi-Fi, 30 dBm APs, 20 dBm LTE clients, 30 dBm Wi-Fi clients.
#pragma once

#include "cellfi/scenario/harness.h"
#include "cellfi/scenario/sweep.h"

namespace fig9 {

using namespace cellfi;
using namespace cellfi::scenario;

inline ScenarioConfig BaseConfig(Technology tech, int num_aps, int clients_per_ap,
                                 std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.tech = tech;
  cfg.workload = WorkloadKind::kBacklogged;
  cfg.propagation = PropagationKind::kSuburbanUhf;
  cfg.topology.area_m = 2000.0;
  cfg.topology.num_aps = num_aps;
  cfg.topology.clients_per_ap = clients_per_ap;
  cfg.topology.client_radius_m = 250.0;
  cfg.ap_power_dbm = 30.0;
  cfg.client_power_dbm = 20.0;
  cfg.wifi_client_power_dbm = 30.0;
  cfg.lte_bandwidth = LteBandwidth::k5MHz;
  cfg.lte_tdd_config = 4;
  cfg.wifi_channel_width_hz = 6e6;
  cfg.warmup = 3 * kSecond;
  cfg.duration = 15 * kSecond;
  cfg.seed = seed;
  return cfg;
}

/// Repetitions per data point; CELLFI_BENCH_REPS overrides (quick runs).
inline int Reps(int default_reps) { return ResolveReps(default_reps); }

inline const char* TechName(Technology tech) {
  switch (tech) {
    case Technology::kCellFi: return "CellFi";
    case Technology::kLte: return "LTE";
    case Technology::kOracle: return "Oracle";
    case Technology::kLaaLte: return "LAA-LTE";
    case Technology::kWifi80211af: return "802.11af";
    case Technology::kWifi80211ac: return "802.11ac";
  }
  return "?";
}

}  // namespace fig9
