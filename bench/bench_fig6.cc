// Fig. 6: spectrum-database interaction timeline.
//
// Script: the AP acquires a channel; 57 s after it is on the air the
// channel is removed from the database for 5 minutes (an incumbent
// wireless microphone), then restored. Paper measurements: transmissions
// stop ~2 s after the DB change (ETSI budget: 60 s), the AP takes 1 m 36 s
// to reboot onto the restored channel, and the client another 56 s of cell
// search to reconnect.
#include <iostream>

#include "cellfi/common/table.h"
#include "cellfi/core/channel_selector.h"

using namespace cellfi;
using namespace cellfi::core;
using namespace cellfi::tvws;

int main() {
  std::cout << "CellFi reproduction -- Fig. 6 (channel vacate / reacquire timeline)\n\n";

  const GeoLocation here{.latitude = 47.64, .longitude = -122.13};
  Simulator sim;
  SpectrumDatabase db;
  PawsServer server(db);
  InProcessTransport transport(sim, server);
  PawsClient client({.serial_number = "cellfi-ap-001"}, Regulatory::kUs);
  PawsSession session(sim, client, transport);
  QuietScanner scanner;
  ChannelSelectorConfig cfg;
  cfg.location = here;
  ChannelSelector selector(sim, session, scanner, cfg);
  selector.Start();

  // Let the AP come up and the client connect, then script the DB change
  // 57 s later (the paper's timeline starts with the link established).
  while (!selector.clients_connected() && sim.Now() < 1000 * kSecond) {
    sim.RunUntil(sim.Now() + kSecond);
  }
  int channel = -1;
  for (const auto& e : selector.timeline()) {
    if (e.what == "ap_on") channel = e.channel;
  }
  if (!selector.clients_connected()) {
    std::cout << "ERROR: AP never came on air\n";
    return 1;
  }

  const SimTime removed_at = sim.Now() + 57 * kSecond;
  const SimTime restored_at = removed_at + 300 * kSecond;
  sim.ScheduleAt(removed_at, [&] {
    for (int ch = 14; ch <= 51; ++ch) {
      db.AddIncumbent({.id = "mic-" + std::to_string(ch), .channel = ch,
                       .location = here, .protection_radius_m = 10'000.0,
                       .start = removed_at, .stop = restored_at});
    }
  });
  sim.RunUntil(restored_at + 400 * kSecond);

  Table t({"t_rel_s", "event", "channel"});
  for (const auto& e : selector.timeline()) {
    t.AddRow({Table::Num(ToSeconds(e.time - removed_at), 1), e.what,
              e.channel >= 0 ? std::to_string(e.channel) : "-"});
  }
  t.Print(std::cout, "Timeline (t = 0 at DB channel removal; channel " +
                         std::to_string(channel) + " in use)");

  // Derived quantities vs the paper's measurements.
  SimTime off_at = -1, on_again = -1, client_back = -1, reboot_started = -1;
  bool past_removal = false;
  for (const auto& e : selector.timeline()) {
    if (e.time >= removed_at) past_removal = true;
    if (!past_removal) continue;
    if (e.what == "ap_off" && off_at < 0) off_at = e.time;
    if (e.what == "ap_rebooting" && reboot_started < 0) reboot_started = e.time;
    if (e.what == "ap_on" && on_again < 0) on_again = e.time;
    if (e.what == "client_connected" && client_back < 0) client_back = e.time;
  }

  Table s({"quantity", "paper", "measured"});
  s.AddRow({"TX stop after DB change", "2 s (<=60 s ETSI)",
            Table::Num(ToSeconds(off_at - removed_at), 1) + " s"});
  s.AddRow({"AP reboot to radio-on", "1 m 36 s",
            Table::Num(ToSeconds(on_again - reboot_started), 0) + " s"});
  s.AddRow({"Client reconnect after radio-on", "56 s",
            Table::Num(ToSeconds(client_back - on_again), 0) + " s"});
  s.AddRow({"Channel unavailable window", "5 min",
            Table::Num(ToSeconds(restored_at - removed_at) / 60.0, 0) + " min"});
  s.Print(std::cout, "Fig. 6 summary");

  const bool etsi_ok = off_at - removed_at <= 60 * kSecond;
  std::cout << "ETSI EN 301 598 60 s vacate requirement: "
            << (etsi_ok ? "SATISFIED" : "VIOLATED") << "\n";
  return etsi_ok ? 0 : 1;
}
