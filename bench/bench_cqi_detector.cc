// Section 6.3.2: CQI interference detector quality.
//
// Paper measurements on real hardware: <2 % false positives on a clean
// (but fading) channel and ~80 % detection probability when interference
// is strong. Reproduced here over the simulated channel: repeated trials
// with a clean phase followed by a strong-interferer phase.
#include <iostream>

#include "cellfi/common/table.h"
#include "cellfi/core/cqi_detector.h"
#include "cellfi/lte/network.h"
#include "cellfi/radio/pathloss.h"

using namespace cellfi;

namespace {

struct TrialResult {
  int clean_reports = 0;
  int clean_detections = 0;  // detector asserted on any subchannel (FP)
  bool detected_after_onset = false;
};

TrialResult RunTrial(std::uint64_t seed) {
  HataUrbanPathLoss pathloss(15.0, 1.5);
  RadioEnvironmentConfig env_cfg;
  env_cfg.carrier_freq_hz = 600e6;
  env_cfg.shadowing_sigma_db = 0.0;
  env_cfg.enable_fading = true;
  env_cfg.seed = seed;
  Simulator sim;
  RadioEnvironment env(pathloss, env_cfg);

  const RadioNodeId serving = env.AddNode({.position = {0, 0}, .tx_power_dbm = 30.0});
  const RadioNodeId interferer = env.AddNode({.position = {450, 0}, .tx_power_dbm = 30.0});
  const RadioNodeId client = env.AddNode({.position = {180, 0}, .tx_power_dbm = 20.0});
  const RadioNodeId iclient = env.AddNode({.position = {470, 30}, .tx_power_dbm = 20.0});

  lte::LteNetworkConfig net_cfg;
  net_cfg.seed = seed ^ 0x99;
  lte::LteNetwork net(sim, env, net_cfg);
  lte::LteMacConfig mac;
  mac.bandwidth = LteBandwidth::k5MHz;
  const lte::CellId c0 = net.AddCell(mac, serving);
  const lte::CellId c1 = net.AddCell(mac, interferer);
  const lte::UeId ue = net.AddUe(client, c0);
  const lte::UeId iue = net.AddUe(iclient, c1);

  const SimTime onset = 2 * kSecond;
  net.SetCellActive(c1, false);
  sim.ScheduleAt(onset, [&] { net.SetCellActive(c1, true); });

  core::CqiInterferenceDetector detector(13);
  TrialResult result;
  net.on_cqi_report = [&](lte::CellId cell, lte::UeId u, const CqiMeasurement& m) {
    if (cell != c0 || u != ue) return;
    detector.AddReport(m.subband_cqi);
    bool any = false;
    for (int s = 0; s < 13; ++s) any |= detector.Detected(s);
    if (sim.Now() < onset) {
      // Skip the first 200 ms while the max-window establishes itself.
      if (sim.Now() > 200 * kMillisecond) {
        ++result.clean_reports;
        if (any) ++result.clean_detections;
      }
    } else if (any) {
      result.detected_after_onset = true;
    }
  };

  sim.SchedulePeriodic(100 * kMillisecond, [&] {
    net.OfferDownlink(ue, 4 << 20);
    net.OfferDownlink(iue, 4 << 20);
  });
  net.Start();
  sim.RunUntil(onset + 1 * kSecond);
  return result;
}

}  // namespace

int main() {
  std::cout << "CellFi reproduction -- Section 6.3.2 (CQI interference detector)\n\n";

  int total_clean = 0, total_fp = 0, detected = 0;
  const int trials = 25;
  for (int t = 0; t < trials; ++t) {
    const TrialResult r = RunTrial(500 + static_cast<std::uint64_t>(t));
    total_clean += r.clean_reports;
    total_fp += r.clean_detections;
    if (r.detected_after_onset) ++detected;
  }

  Table t({"metric", "paper", "measured"});
  t.AddRow({"False-positive rate (clean channel)", "< 2%",
            Table::Num(100.0 * total_fp / std::max(total_clean, 1), 2) + "% of reports"});
  t.AddRow({"Detection probability (strong interferer, within 1 s)", "~80%",
            Table::Num(100.0 * detected / trials, 0) + "%"});
  t.AddRow({"Trials", "-", std::to_string(trials)});
  t.Print(std::cout, "CQI detector quality (60% of max rule, 10 consecutive samples)");
  return 0;
}
