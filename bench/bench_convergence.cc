// Theorem 1 (Section 5.5): the hopping algorithm converges in
// O(M log n / ((1 - p) gamma)) rounds in expectation and w.h.p.
//
// Three sweeps hold everything but one variable fixed:
//   (1) n     -> rounds should grow ~ log n
//   (2) p     -> rounds should grow ~ 1 / (1 - p)
//   (3) gamma -> rounds should grow ~ 1 / gamma
// Each row also prints the theorem's bound shape, normalized to the first
// data point, so the trend comparison is direct.
//
// The independent game replications for each data point run concurrently on
// the sweep runner; results are collected in rep order, so the means are
// bit-identical to the historical sequential loop.
#include <chrono>
#include <cmath>
#include <iostream>

#include "cellfi/baseline/hopping_game.h"
#include "cellfi/common/stats.h"
#include "cellfi/common/table.h"
#include "cellfi/scenario/sweep.h"

using namespace cellfi;
using namespace cellfi::baseline;
using namespace cellfi::scenario;

namespace {

// Ring graph with degree-2 neighbourhoods: gamma is independent of n.
Graph Ring(int n) {
  Graph g(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    g[static_cast<std::size_t>(v)] = {(v + 1) % n, (v + n - 1) % n};
  }
  return g;
}

double MeanRounds(SweepRunner& runner, BenchReport& report, const std::string& label,
                  const Graph& g, const std::vector<int>& demands,
                  const HoppingGameConfig& cfg, int reps, std::uint64_t seed) {
  struct Rep {
    bool converged = false;
    int rounds = 0;
  };
  std::vector<Rep> results(static_cast<std::size_t>(reps));
  const auto start = std::chrono::steady_clock::now();
  runner.RunTasks(results.size(), [&](std::size_t rep) {
    Rng rng(seed + static_cast<std::uint64_t>(rep));
    const auto result = RunHoppingGame(g, demands, cfg, rng);
    results[rep] = {result.converged, result.rounds};
  });
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  report.AddPoint(label, reps, wall, 0.0);
  Summary s;
  for (const Rep& r : results) {
    if (r.converged) s.Add(r.rounds);
  }
  return s.mean();
}

}  // namespace

int main() {
  std::cout << "CellFi reproduction -- Theorem 1 convergence bounds\n\n";
  const int reps = ResolveReps(30);

  SweepRunner runner(SweepOptions{});
  BenchReport report("convergence", runner.threads(), reps);

  // --- Sweep 1: n, fixed gamma = 0.5 (d = 2, ring, M = 12), p = 0 -------
  {
    Table t({"n", "mean_rounds", "theory O(log n) (normalized)"});
    double base_rounds = 0.0;
    for (int n : {8, 16, 32, 64, 128, 256}) {
      HoppingGameConfig cfg;
      cfg.num_subchannels = 12;
      const double rounds = MeanRounds(
          runner, report, "n=" + std::to_string(n), Ring(n),
          std::vector<int>(static_cast<std::size_t>(n), 2), cfg, reps,
          static_cast<std::uint64_t>(n));
      if (base_rounds == 0.0) base_rounds = rounds;
      const double theory = base_rounds * std::log(n) / std::log(8);
      t.AddRow({std::to_string(n), Table::Num(rounds, 2), Table::Num(theory, 2)});
    }
    t.Print(std::cout, "Rounds vs n (ring, demand 2, M = 12, gamma = 0.5, p = 0)");
  }

  // --- Sweep 2: fading probability p, fixed n and gamma ------------------
  {
    Table t({"p", "mean_rounds", "theory O(1/(1-p)) (normalized)"});
    const Graph g = Ring(64);
    const std::vector<int> demands(64, 2);
    double base_rounds = 0.0;
    for (double p : {0.0, 0.2, 0.4, 0.6, 0.8}) {
      HoppingGameConfig cfg;
      cfg.num_subchannels = 12;
      cfg.fading_probability = p;
      const double rounds =
          MeanRounds(runner, report, "p=" + Table::Num(p, 1), g, demands, cfg, reps,
                     static_cast<std::uint64_t>(p * 100 + 7));
      if (base_rounds == 0.0) base_rounds = rounds;
      t.AddRow({Table::Num(p, 1), Table::Num(rounds, 2),
                Table::Num(base_rounds / (1.0 - p), 2)});
    }
    t.Print(std::cout, "Rounds vs fading p (n = 64, gamma = 0.5)");
  }

  // --- Sweep 3: slack gamma via M, fixed n and p --------------------------
  {
    Table t({"M", "gamma", "mean_rounds", "theory O(M/gamma) (normalized)"});
    const Graph g = Ring(64);
    const std::vector<int> demands(64, 2);
    double base = 0.0;
    for (int m : {7, 8, 10, 12, 16, 24}) {
      HoppingGameConfig cfg;
      cfg.num_subchannels = m;
      const double gamma = DemandSlack(g, demands, m);
      const double rounds = MeanRounds(runner, report, "M=" + std::to_string(m), g,
                                       demands, cfg, reps, static_cast<std::uint64_t>(m));
      const double shape = m / gamma;
      if (base == 0.0) base = rounds / shape;
      t.AddRow({std::to_string(m), Table::Num(gamma, 3), Table::Num(rounds, 2),
                Table::Num(base * shape, 2)});
    }
    t.Print(std::cout, "Rounds vs slack (n = 64, demand 2, p = 0)");
  }

  std::cout << "Expected: measured trends track the theory columns (same order of "
               "growth; constants differ).\n";
  std::cout << "Bench artifact: " << report.Write() << "\n";
  return 0;
}
