// Fig. 9(c): page-load-time CDF under the web workload for 802.11af, plain
// LTE and CellFi.
//
// Paper shape: CellFi 2.3x faster than Wi-Fi at the median and ~8 % faster
// than LTE; LTE is marginally better at small percentiles but its tail
// collapses under interference (we also report the fraction of page loads
// that never completed — the tail the CDF hides).
//
// Replications run concurrently on the sweep runner with per-rep shared
// topologies; aggregation order matches the historical sequential loop.
#include <iostream>

#include "cellfi/common/stats.h"
#include "cellfi/common/table.h"
#include "fig9_common.h"

using namespace fig9;

int main() {
  std::cout << "CellFi reproduction -- Fig. 9(c) (page load times, web workload)\n\n";
  const int reps = Reps(4);
  const Technology techs[] = {Technology::kWifi80211af, Technology::kLte,
                              Technology::kCellFi};

  SweepOptions opts;
  opts.progress = true;
  SweepRunner runner(opts);
  BenchReport report("fig9c", runner.threads(), reps);

  std::vector<Replication> jobs;
  for (int rep = 0; rep < reps; ++rep) {
    const std::uint64_t seed = 6000 + static_cast<std::uint64_t>(rep);
    Rng rng(seed);
    auto base = BaseConfig(Technology::kCellFi, 10, 6, seed);
    base.workload = WorkloadKind::kWeb;
    base.web.think_time_mean_s = 15.0;  // [29]-style think times
    base.duration = 45 * kSecond;
    auto topo = std::make_shared<const Topology>(GenerateTopology(base.topology, rng));
    for (int i = 0; i < 3; ++i) {
      auto cfg = base;
      cfg.tech = techs[i];
      jobs.push_back(Replication{cfg, topo, i, rep, TechName(techs[i])});
    }
  }
  const auto outcomes = runner.Run(jobs);
  ThrowIfFailed(outcomes);

  // Page loads that never complete (starved/disconnected clients) are part
  // of the distribution: they are recorded as +inf, so percentiles are
  // taken over pages STARTED, exactly what a user experiences.
  constexpr double kStalled = 1e9;
  Distribution plt[3];
  for (const ReplicationOutcome& out : outcomes) {
    const int i = out.point;
    for (const auto& c : out.result.clients) {
      for (double v : c.page_load_times_s) plt[i].Add(v);
      for (int k = c.pages_completed; k < c.pages_started; ++k) plt[i].Add(kStalled);
    }
  }
  for (int i = 0; i < 3; ++i) report.AddPoint(TechName(techs[i]), outcomes, i);

  auto cell_for = [&](int i, double q) -> std::string {
    if (plt[i].empty()) return "-";
    const double v = plt[i].Percentile(q);
    return v >= kStalled ? "stalled" : Table::Num(v, 2);
  };

  Table t({"percentile", "802.11af s", "LTE s", "CellFi s"});
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90}) {
    t.AddRow({Table::Num(q, 2), cell_for(0, q), cell_for(1, q), cell_for(2, q)});
  }
  t.Print(std::cout, "Fig. 9(c): page load time CDF (over pages started; "
                     "'stalled' = never completed)");

  Table s({"tech", "median s", "pages never completed %"});
  for (int i = 0; i < 3; ++i) {
    s.AddRow({TechName(techs[i]), cell_for(i, 0.5),
              Table::Num(100.0 * (1.0 - plt[i].CdfAt(kStalled - 1.0)), 1)});
  }
  s.Print(std::cout, "Completion summary");

  if (!plt[0].empty() && !plt[2].empty()) {
    std::cout << "Wi-Fi median / CellFi median: "
              << Table::Num(std::min(plt[0].Median(), kStalled) /
                                std::max(plt[2].Median(), 1e-3),
                            1)
              << "x (paper: 2.3x)\n";
  }
  if (!plt[1].empty() && !plt[2].empty()) {
    std::cout << "LTE median / CellFi median: "
              << Table::Num(std::min(plt[1].Median(), kStalled) /
                                std::max(plt[2].Median(), 1e-3),
                            2)
              << " (paper: ~1.08)\n";
  }
  std::cout << "Bench artifact: " << report.Write() << "\n";
  return 0;
}
