// Fig. 2: Wi-Fi MAC inefficiencies at long range.
//
// The same AP layout (scaled to each technology's propagation) with the
// same number of clients and comparable per-client SNR: 802.11af outdoors
// at 600 MHz (large collision domains, hidden terminals) vs 802.11ac
// indoors at 5 GHz. Both run 20 MHz channels with RTS/CTS, as in the
// paper. Expected shape: the 802.11af client-throughput CDF sits well left
// of 802.11ac with a heavy starved head.
#include <iostream>

#include "cellfi/common/table.h"
#include "cellfi/scenario/harness.h"

using namespace cellfi;
using namespace cellfi::scenario;

int main() {
  std::cout << "CellFi reproduction -- Fig. 2 (802.11af vs 802.11ac client throughput)\n\n";

  Distribution af_tput, ac_tput;
  double af_starved = 0.0, ac_starved = 0.0;
  const int reps = 6;

  for (int rep = 0; rep < reps; ++rep) {
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(rep);

    // Clients are placed across each technology's FULL range ("the same
    // number of clients within the corresponding range of each access
    // point"), so the SNR distributions match while the collision-domain
    // geometry differs: at TVWS scale the fixed -82 dBm carrier-sense
    // threshold leaves most APs hidden from each other.
    ScenarioConfig af;
    af.tech = Technology::kWifi80211af;
    af.workload = WorkloadKind::kBacklogged;
    af.propagation = PropagationKind::kHataUrbanUhf;
    af.topology.num_aps = 5;
    af.topology.clients_per_ap = 6;
    af.topology.area_m = 2000.0;
    af.topology.client_radius_m = 750.0;  // ~ 802.11af range at 30 dBm
    af.wifi_channel_width_hz = 20e6;  // Fig. 2 uses 20 MHz for both
    af.ap_power_dbm = 30.0;
    af.wifi_client_power_dbm = 30.0;
    af.warmup = 1 * kSecond;
    af.duration = 9 * kSecond;
    af.seed = seed;

    Rng rng(seed);
    const Topology outdoor = GenerateTopology(af.topology, rng);

    ScenarioConfig ac = af;
    ac.tech = Technology::kWifi80211ac;
    ac.propagation = PropagationKind::kIndoor5GHz;
    ac.ap_power_dbm = 20.0;
    ac.wifi_client_power_dbm = 20.0;
    // Same layout shrunk so clients again span the (shorter) 802.11ac
    // range: equal SNR distribution, home-scale geometry.
    const Topology indoor = ScaleTopology(outdoor, 0.15);

    const auto af_result = RunScenarioOn(af, outdoor);
    const auto ac_result = RunScenarioOn(ac, indoor);
    for (const auto& c : af_result.clients) af_tput.Add(c.throughput_bps / 1e6);
    for (const auto& c : ac_result.clients) ac_tput.Add(c.throughput_bps / 1e6);
    af_starved += af_result.fraction_starved / reps;
    ac_starved += ac_result.fraction_starved / reps;
  }

  Table t({"percentile", "802.11af Mbps", "802.11ac Mbps"});
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90}) {
    t.AddRow({Table::Num(q, 2), Table::Num(af_tput.Percentile(q), 2),
              Table::Num(ac_tput.Percentile(q), 2)});
  }
  t.Print(std::cout, "Fig. 2: client throughput CDF (backlogged, RTS/CTS, 20 MHz)");

  std::cout << "Median ratio ac/af: "
            << Table::Num(ac_tput.Median() / std::max(af_tput.Median(), 1e-3), 1)
            << "x\nStarved fraction: af " << Table::Num(af_starved, 2) << ", ac "
            << Table::Num(ac_starved, 2)
            << "\n(Paper: 802.11af much worse than 802.11ac at the same SNR.)\n";
  return 0;
}
