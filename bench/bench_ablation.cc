// Ablations for the design choices DESIGN.md calls out.
//
//  A. Interference-management knobs on the dense Fig. 9 scenario:
//     channel re-use on/off, sensing quality, bucket lambda, plus the
//     Section 8 comparison against LAA/MulteFire-style listen-before-talk.
//  B. Link-adaptation margin: HARQ usage vs throughput on a long link.
//  C. 802.11af clock-down factor: what the TVHT down-clocking costs.
//
// All replications (scenario-based and the custom Part B links) run
// concurrently on the sweep runner; seeds and aggregation order match the
// historical sequential loops, so the tables are bit-identical.
#include <iostream>
#include <optional>

#include "cellfi/common/stats.h"
#include "cellfi/common/table.h"
#include "fig9_common.h"

using namespace fig9;

namespace {

struct Outcome {
  double starved_pct = 0;
  double median_mbps = 0;
  double total_mbps = 0;
  double hops = 0;
};

Outcome Aggregate(const std::vector<ReplicationOutcome>& outcomes, int point, int reps) {
  Outcome out;
  Distribution tput;
  for (const ReplicationOutcome& o : outcomes) {
    if (o.point != point) continue;
    for (const auto& c : o.result.clients) tput.Add(c.throughput_bps / 1e6);
    out.starved_pct += 100.0 * o.result.fraction_starved / reps;
    out.total_mbps += o.result.total_throughput_bps / 1e6 / reps;
    out.hops += static_cast<double>(o.result.im_total_hops) / reps;
  }
  out.median_mbps = tput.Median();
  return out;
}

}  // namespace

int main() {
  std::cout << "CellFi ablations (design choices from DESIGN.md)\n\n";
  const int reps = Reps(2);
  const auto base = BaseConfig(Technology::kCellFi, 10, 6, 0);

  SweepOptions opts;
  opts.progress = true;
  SweepRunner runner(opts);
  BenchReport report("ablation", runner.threads(), reps);

  // --- A. Interference management -----------------------------------------
  {
    std::vector<std::pair<const char*, ScenarioConfig>> variants;
    variants.emplace_back("CellFi (paper settings)", base);

    ScenarioConfig no_reuse = base;
    no_reuse.cellfi.im.enable_reuse = false;
    variants.emplace_back("no channel re-use", no_reuse);

    ScenarioConfig ideal = base;
    ideal.cellfi.detection_probability = 1.0;
    ideal.cellfi.false_positive_rate = 0.0;
    variants.emplace_back("ideal sensing (TP 1.0, FP 0)", ideal);

    ScenarioConfig poor = base;
    poor.cellfi.detection_probability = 0.4;
    poor.cellfi.false_positive_rate = 0.10;
    variants.emplace_back("poor sensing (TP 0.4, FP 0.1)", poor);

    ScenarioConfig twitchy = base;
    twitchy.cellfi.im.bucket_lambda = 2.0;
    variants.emplace_back("bucket lambda = 2 (twitchy)", twitchy);

    ScenarioConfig sluggish = base;
    sluggish.cellfi.im.bucket_lambda = 40.0;
    variants.emplace_back("bucket lambda = 40 (sluggish)", sluggish);

    ScenarioConfig lte = base;
    lte.tech = Technology::kLte;
    variants.emplace_back("plain LTE (no IM)", lte);

    ScenarioConfig laa = base;
    laa.tech = Technology::kLaaLte;
    variants.emplace_back("LAA-style LBT-LTE (Section 8)", laa);

    std::vector<Replication> jobs;
    for (std::size_t v = 0; v < variants.size(); ++v) {
      for (int rep = 0; rep < reps; ++rep) {
        ScenarioConfig cfg = variants[v].second;
        cfg.seed = 7000 + static_cast<std::uint64_t>(rep);
        jobs.push_back(Replication{cfg, nullptr, static_cast<int>(v), rep,
                                   variants[v].first});
      }
    }
    const auto outcomes = runner.Run(jobs);
    ThrowIfFailed(outcomes);

    Table t({"variant", "starved %", "median Mbps", "total Mbps", "hops"});
    for (std::size_t v = 0; v < variants.size(); ++v) {
      const Outcome o = Aggregate(outcomes, static_cast<int>(v), reps);
      t.AddRow({variants[v].first, Table::Num(o.starved_pct, 1),
                Table::Num(o.median_mbps, 3), Table::Num(o.total_mbps, 1),
                Table::Num(o.hops, 0)});
      report.AddPoint(std::string("im/") + variants[v].first, outcomes,
                      static_cast<int>(v));
    }
    t.Print(std::cout, "A. Interference management, 10 APs x 6 clients, 5 MHz");
  }

  // --- B. Link-adaptation margin -------------------------------------------
  {
    const double margins[] = {0.0, 1.5, 3.0, 5.0};
    constexpr int kSeeds = 4;
    struct LinkSample {
      double tput = 0.0;
      std::optional<double> harq;
    };
    std::vector<LinkSample> samples(4 * kSeeds);

    const auto start = std::chrono::steady_clock::now();
    runner.RunTasks(samples.size(), [&](std::size_t task) {
      const double margin = margins[task / kSeeds];
      const std::uint64_t seed = 1 + task % kSeeds;
      // One long link, Fig. 1 style.
      Simulator sim;
      static const HataUrbanPathLoss pathloss(15.0, 1.5);
      RadioEnvironmentConfig env_cfg;
      env_cfg.carrier_freq_hz = 600e6;
      env_cfg.shadowing_sigma_db = 0.0;
      env_cfg.seed = seed;
      RadioEnvironment env(pathloss, env_cfg);
      const RadioNodeId ap = env.AddNode({.position = {0, 0},
                                          .antenna = Antenna::Sector(7.0, 0.0, 2.1),
                                          .tx_power_dbm = 29.0});
      const RadioNodeId cl = env.AddNode({.position = {1000, 0}, .tx_power_dbm = 20.0});
      lte::LteNetworkConfig nc;
      nc.seed = seed;
      lte::LteNetwork net(sim, env, nc);
      lte::LteMacConfig mac;
      mac.link_adaptation_margin_db = margin;
      net.AddCell(mac, ap);
      const lte::UeId ue = net.AddUe(cl);
      std::uint64_t bits = 0;
      net.on_dl_delivered = [&](lte::UeId, std::uint64_t b, SimTime now) {
        if (now >= 500 * kMillisecond) bits += 8 * b;
      };
      sim.SchedulePeriodic(200 * kMillisecond, [&] { net.OfferDownlink(ue, 2 << 20); });
      net.Start();
      sim.RunUntil(4 * kSecond);
      LinkSample& sample = samples[task];
      sample.tput = static_cast<double>(bits) / 3.5e6 * (1460.0 / 1500.0);
      const auto* ctx = net.ue(ue).serving != lte::kInvalidCell
                            ? net.cell(net.ue(ue).serving).FindUe(ue)
                            : nullptr;
      if (ctx != nullptr && ctx->dl_total_blocks > 0) {
        sample.harq = static_cast<double>(ctx->dl_harq_retx_blocks) /
                      static_cast<double>(ctx->dl_total_blocks);
      }
    });
    report.AddPoint("link_adaptation_margin", static_cast<int>(samples.size()),
                    std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                        .count(),
                    4.0 * samples.size());

    Table t({"margin dB", "tcp Mbps @1 km", "harq retx frac"});
    for (int m = 0; m < 4; ++m) {
      Summary tput, harq;
      for (int s = 0; s < kSeeds; ++s) {
        const LinkSample& sample = samples[static_cast<std::size_t>(m * kSeeds + s)];
        tput.Add(sample.tput);
        if (sample.harq) harq.Add(*sample.harq);
      }
      t.AddRow({Table::Num(margins[m], 1), Table::Num(tput.mean(), 2),
                Table::Num(harq.mean(), 2)});
    }
    t.Print(std::cout,
            "B. Link-adaptation margin at 1 km (paper: ~25% HARQ beyond 500 m)");
  }

  // --- C. 802.11af clock-down ----------------------------------------------
  {
    const double clocks[] = {1.0, 2.0, 4.0};
    std::vector<Replication> jobs;
    for (int ci = 0; ci < 3; ++ci) {
      for (int rep = 0; rep < reps; ++rep) {
        auto cfg = BaseConfig(Technology::kWifi80211af, 10, 6,
                              7300 + static_cast<std::uint64_t>(rep));
        cfg.wifi_clock_scale = clocks[ci];
        jobs.push_back(Replication{cfg, nullptr, ci, rep,
                                   "clock=" + Table::Num(clocks[ci], 0)});
      }
    }
    const auto outcomes = runner.Run(jobs);
    ThrowIfFailed(outcomes);

    Table t({"clock scale", "median Mbps", "starved %"});
    for (int ci = 0; ci < 3; ++ci) {
      Distribution tput;
      double starved = 0;
      for (const ReplicationOutcome& o : outcomes) {
        if (o.point != ci) continue;
        for (const auto& c : o.result.clients) tput.Add(c.throughput_bps / 1e6);
        starved += 100.0 * o.result.fraction_starved / reps;
      }
      t.AddRow({Table::Num(clocks[ci], 0), Table::Num(tput.Median(), 3),
                Table::Num(starved, 1)});
      report.AddPoint("clock=" + Table::Num(clocks[ci], 0), outcomes, ci);
    }
    t.Print(std::cout, "C. 802.11af TVHT down-clocking cost (6 MHz channel)");
  }
  std::cout << "Bench artifact: " << report.Write() << "\n";
  return 0;
}
