// Fig. 9(a): coverage (fraction of connected users) vs network density for
// 802.11af, plain LTE and CellFi, 6 clients per AP; plus the 16-client
// dense variant mentioned in the text.
//
// Paper shape: CellFi > LTE > 802.11af at every density; at 14 APs CellFi
// improves coverage by ~37 % over Wi-Fi and ~16 % over LTE; with 16
// clients per AP CellFi still covers >80 %.
//
// All (density, tech, rep) replications run concurrently on the sweep
// runner; seeds and aggregation order match the historical sequential
// loop, so the tables are bit-identical to pre-parallel output.
#include <iostream>

#include "cellfi/common/stats.h"
#include "cellfi/common/table.h"
#include "fig9_common.h"

using namespace fig9;

int main() {
  std::cout << "CellFi reproduction -- Fig. 9(a) (coverage vs density)\n\n";
  const int reps = Reps(4);
  const Technology techs[] = {Technology::kWifi80211af, Technology::kLte,
                              Technology::kCellFi};
  const int densities[] = {6, 8, 10, 12, 14};

  SweepOptions opts;
  opts.progress = true;
  SweepRunner runner(opts);
  BenchReport report("fig9a", runner.threads(), reps);

  // point = density_index * 3 + tech_index.
  std::vector<Replication> jobs;
  for (int di = 0; di < 5; ++di) {
    const int num_aps = densities[di];
    for (int rep = 0; rep < reps; ++rep) {
      const std::uint64_t seed = 9000 + static_cast<std::uint64_t>(num_aps * 37 + rep);
      Rng rng(seed);
      auto topo = std::make_shared<const Topology>(
          GenerateTopology(BaseConfig(Technology::kCellFi, num_aps, 6, seed).topology, rng));
      for (int ti = 0; ti < 3; ++ti) {
        jobs.push_back(Replication{
            BaseConfig(techs[ti], num_aps, 6, seed), topo, di * 3 + ti, rep,
            "aps=" + std::to_string(num_aps) + "/" + TechName(techs[ti])});
      }
    }
  }
  const auto outcomes = runner.Run(jobs);
  ThrowIfFailed(outcomes);

  Table t({"num_aps", "802.11af %", "LTE %", "CellFi %"});
  double at14[3] = {0, 0, 0};
  for (int di = 0; di < 5; ++di) {
    std::vector<std::string> row{std::to_string(densities[di])};
    for (int ti = 0; ti < 3; ++ti) {
      const Summary connected =
          PointSummary(outcomes, di * 3 + ti, [](const ScenarioResult& r) {
            return 100.0 * r.fraction_connected;
          });
      row.push_back(Table::Num(connected.mean(), 1));
      if (densities[di] == 14) at14[ti] = connected.mean();
      report.AddPoint("aps=" + std::to_string(densities[di]) + "/" + TechName(techs[ti]),
                      outcomes, di * 3 + ti);
    }
    t.AddRow(row);
  }
  t.Print(std::cout, "Fig. 9(a): fraction of connected users (6 clients/AP)");
  std::cout << "At 14 APs: CellFi vs Wi-Fi +" << Table::Num(at14[2] - at14[0], 1)
            << " pts, CellFi vs LTE +" << Table::Num(at14[2] - at14[1], 1)
            << " pts (paper: +37% / +16%)\n\n";

  // Dense 16-client variant (paper text: CellFi still covers > 80 %).
  const int dense_reps = std::max(reps / 2, 1);
  std::vector<Replication> dense_jobs;
  for (int ti = 0; ti < 3; ++ti) {
    for (int rep = 0; rep < dense_reps; ++rep) {
      const std::uint64_t seed = 9900 + static_cast<std::uint64_t>(rep);
      dense_jobs.push_back(
          Replication{BaseConfig(techs[ti], 14, 16, seed), nullptr, ti, rep,
                      std::string("dense/") + TechName(techs[ti])});
    }
  }
  const auto dense_outcomes = runner.Run(dense_jobs);
  ThrowIfFailed(dense_outcomes);

  Table d({"tech", "connected %"});
  for (int ti = 0; ti < 3; ++ti) {
    const Summary connected = PointSummary(dense_outcomes, ti, [](const ScenarioResult& r) {
      return 100.0 * r.fraction_connected;
    });
    d.AddRow({TechName(techs[ti]), Table::Num(connected.mean(), 1)});
    report.AddPoint(std::string("dense/") + TechName(techs[ti]), dense_outcomes, ti);
  }
  d.Print(std::cout, "Dense variant: 14 APs x 16 clients (paper: CellFi > 80%)");
  std::cout << "Bench artifact: " << report.Write() << "\n";
  return 0;
}
