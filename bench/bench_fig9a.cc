// Fig. 9(a): coverage (fraction of connected users) vs network density for
// 802.11af, plain LTE and CellFi, 6 clients per AP; plus the 16-client
// dense variant mentioned in the text.
//
// Paper shape: CellFi > LTE > 802.11af at every density; at 14 APs CellFi
// improves coverage by ~37 % over Wi-Fi and ~16 % over LTE; with 16
// clients per AP CellFi still covers >80 %.
#include <iostream>

#include "cellfi/common/stats.h"
#include "cellfi/common/table.h"
#include "fig9_common.h"

using namespace fig9;

int main() {
  std::cout << "CellFi reproduction -- Fig. 9(a) (coverage vs density)\n\n";
  const int reps = Reps(4);
  const Technology techs[] = {Technology::kWifi80211af, Technology::kLte,
                              Technology::kCellFi};

  Table t({"num_aps", "802.11af %", "LTE %", "CellFi %"});
  double at14[3] = {0, 0, 0};
  for (int num_aps : {6, 8, 10, 12, 14}) {
    std::vector<std::string> row{std::to_string(num_aps)};
    int col = 0;
    for (Technology tech : techs) {
      Summary connected;
      for (int rep = 0; rep < reps; ++rep) {
        const std::uint64_t seed = 9000 + static_cast<std::uint64_t>(num_aps * 37 + rep);
        Rng rng(seed);
        const Topology topo =
            GenerateTopology(BaseConfig(tech, num_aps, 6, seed).topology, rng);
        const auto result = RunScenarioOn(BaseConfig(tech, num_aps, 6, seed), topo);
        connected.Add(100.0 * result.fraction_connected);
      }
      row.push_back(Table::Num(connected.mean(), 1));
      if (num_aps == 14) at14[col] = connected.mean();
      ++col;
    }
    t.AddRow(row);
  }
  t.Print(std::cout, "Fig. 9(a): fraction of connected users (6 clients/AP)");
  std::cout << "At 14 APs: CellFi vs Wi-Fi +" << Table::Num(at14[2] - at14[0], 1)
            << " pts, CellFi vs LTE +" << Table::Num(at14[2] - at14[1], 1)
            << " pts (paper: +37% / +16%)\n\n";

  // Dense 16-client variant (paper text: CellFi still covers > 80 %).
  Table d({"tech", "connected %"});
  for (Technology tech : techs) {
    Summary connected;
    for (int rep = 0; rep < std::max(reps / 2, 1); ++rep) {
      const std::uint64_t seed = 9900 + static_cast<std::uint64_t>(rep);
      const auto result = RunScenario(BaseConfig(tech, 14, 16, seed));
      connected.Add(100.0 * result.fraction_connected);
    }
    d.AddRow({TechName(tech), Table::Num(connected.mean(), 1)});
  }
  d.Print(std::cout, "Dense variant: 14 APs x 16 clients (paper: CellFi > 80%)");
  return 0;
}
