// Fig. 9(b): client-throughput CDF in the densest 6-client scenario
// (14 APs x 6 clients = 84 concurrent clients on one 5 MHz channel), for
// 802.11af, plain LTE, CellFi and the centralized oracle.
//
// Paper shape: CellFi ~doubles Wi-Fi's median, cuts starved clients by
// ~70 % vs both Wi-Fi and LTE, always connects > 90 % of clients, and
// tracks the oracle closely. Also reports the Section 6.3.4 convergence
// note: almost all APs stop hopping; ~1-2 % keep hopping.
//
// Replications run concurrently on the sweep runner; per-rep topologies
// are shared across the four technologies and the aggregation order
// matches the historical sequential loop (rep-major), so the output is
// bit-identical to pre-parallel runs.
#include <iostream>

#include "cellfi/common/stats.h"
#include "cellfi/common/table.h"
#include "fig9_common.h"

using namespace fig9;

int main() {
  std::cout << "CellFi reproduction -- Fig. 9(b) (client throughput CDF, densest case)\n\n";
  const int reps = Reps(5);
  const Technology techs[] = {Technology::kWifi80211af, Technology::kLte,
                              Technology::kCellFi, Technology::kOracle};

  SweepOptions opts;
  opts.progress = true;
  SweepRunner runner(opts);
  BenchReport report("fig9b", runner.threads(), reps);

  // point = tech index; jobs are rep-major so outcomes iterate in the same
  // order the sequential loop aggregated.
  std::vector<Replication> jobs;
  for (int rep = 0; rep < reps; ++rep) {
    const std::uint64_t seed = 4000 + static_cast<std::uint64_t>(rep);
    Rng rng(seed);
    auto topo = std::make_shared<const Topology>(
        GenerateTopology(BaseConfig(Technology::kCellFi, 14, 6, seed).topology, rng));
    for (int i = 0; i < 4; ++i) {
      jobs.push_back(Replication{BaseConfig(techs[i], 14, 6, seed), topo, i, rep,
                                 TechName(techs[i])});
    }
  }
  const auto outcomes = runner.Run(jobs);
  ThrowIfFailed(outcomes);

  Distribution tput[4];
  Summary starved[4], connected[4];
  Summary cellfi_hops, cellfi_still_hopping;
  for (const ReplicationOutcome& out : outcomes) {
    const int i = out.point;
    for (const auto& c : out.result.clients) tput[i].Add(c.throughput_bps / 1e6);
    starved[i].Add(out.result.fraction_starved);
    connected[i].Add(out.result.fraction_connected);
    if (techs[i] == Technology::kCellFi) {
      cellfi_hops.Add(static_cast<double>(out.result.im_total_hops));
      cellfi_still_hopping.Add(100.0 * out.result.im_cells_still_hopping / 14.0);
    }
  }
  for (int i = 0; i < 4; ++i) report.AddPoint(TechName(techs[i]), outcomes, i);

  Table t({"percentile", "802.11af", "LTE", "CellFi", "Oracle"});
  for (double q : {0.05, 0.10, 0.25, 0.50, 0.75, 0.90}) {
    std::vector<std::string> row{Table::Num(q, 2)};
    for (int i = 0; i < 4; ++i) row.push_back(Table::Num(tput[i].Percentile(q), 3));
    t.AddRow(row);
  }
  t.Print(std::cout, "Fig. 9(b): client throughput CDF, Mbps (84 clients on 5 MHz)");

  Table s({"tech", "starved %", "connected %", "median Mbps"});
  for (int i = 0; i < 4; ++i) {
    s.AddRow({TechName(techs[i]), Table::Num(100.0 * starved[i].mean(), 1),
              Table::Num(100.0 * connected[i].mean(), 1),
              Table::Num(tput[i].Median(), 3)});
  }
  s.Print(std::cout, "Starvation and coverage summary");

  const double wifi_starved = starved[0].mean();
  const double lte_starved = starved[1].mean();
  const double cellfi_starved = starved[2].mean();
  std::cout << "Starved-client reduction: vs Wi-Fi "
            << Table::Num(100.0 * (1.0 - cellfi_starved / std::max(wifi_starved, 1e-9)), 0)
            << "%, vs LTE "
            << Table::Num(100.0 * (1.0 - cellfi_starved / std::max(lte_starved, 1e-9)), 0)
            << "% (paper: 70-90%)\n";
  std::cout << "CellFi median / Wi-Fi median: "
            << Table::Num(tput[2].Median() / std::max(tput[0].Median(), 1e-3), 1)
            << "x (paper: ~2x)\n";
  std::cout << "CellFi median / Oracle median: "
            << Table::Num(tput[2].Median() / std::max(tput[3].Median(), 1e-3), 2)
            << " (paper: near-optimal)\n";
  std::cout << "Convergence: mean total hops " << Table::Num(cellfi_hops.mean(), 0)
            << ", APs still hopping at the end " << Table::Num(cellfi_still_hopping.mean(), 1)
            << "% (paper: ~1-2% never converge)\n";
  std::cout << "Bench artifact: " << report.Write() << "\n";
  return 0;
}
