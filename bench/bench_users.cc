// Aggregate-UE traffic tier scaling bench (DESIGN.md §18): total synthetic
// population swept 1k -> 1M background users over a fixed 10-AP CellFi
// deployment with 20 fully-simulated clients riding alongside.
//
// The tier is a fluid approximation whose per-epoch cost is
// O(cells x clusters), independent of the population, so the headline is
// that wall time stays ~flat from 1k to 1M users while PRB utilization,
// PRACH contention and the share dynamics respond to the population.
//
// Built-in bit-identity gate: every point runs twice with the same seed
// and shared topology; the two ScenarioResult JSON dumps must match to
// the last byte (the tier is counter-drawn — no stateful RNG anywhere in
// the generator path). Any mismatch fails the bench.
//
// Populations default to 1k/10k/100k/1M (CELLFI_BENCH_USERS_POPS
// overrides, comma-separated, for targeted runs).
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cellfi/common/table.h"
#include "cellfi/scenario/report.h"
#include "fig9_common.h"

using namespace fig9;

namespace {

std::vector<int> Populations() {
  const char* env = std::getenv("CELLFI_BENCH_USERS_POPS");
  std::vector<int> fallback{1000, 10000, 100000, 1000000};
  if (env == nullptr || *env == '\0') return fallback;
  std::vector<int> out;
  std::stringstream ss(env);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const int n = std::atoi(item.c_str());
    if (n > 0) out.push_back(n);
  }
  return out.empty() ? fallback : out;
}

ScenarioConfig UsersConfig(int population, std::uint64_t seed) {
  // Fig. 9 deployment with the population spread evenly over the cells.
  // Demand per user is small (20 kbps) so utilization scales with the
  // population: ~0.17 at 1k total users, saturated at 100k+.
  ScenarioConfig cfg = BaseConfig(Technology::kCellFi, 10, 2, seed);
  cfg.warmup = 500 * kMillisecond;
  cfg.duration = 4 * kSecond;
  cfg.aggregate_load.users_per_cell = population / cfg.topology.num_aps;
  cfg.aggregate_load.per_user_demand_bps = 20e3;
  cfg.aggregate_load.steady_activity = 0.5;
  cfg.aggregate_load.activity_jitter = 0.2;
  cfg.aggregate_load.flash_rate_per_s = 0.02;
  cfg.aggregate_load.flash_duration_s = 2.0;
  cfg.aggregate_load.flash_multiplier = 3.0;
  return cfg;
}

}  // namespace

int main() {
  std::cout << "CellFi reproduction -- aggregate-tier population scaling bench\n\n";
  const std::vector<int> pops = Populations();
  // Two same-seed replications per point: the pair IS the bit-identity
  // gate, so it stays fixed regardless of CELLFI_BENCH_REPS.
  constexpr int kDuplicates = 2;

  SweepOptions opts;
  opts.progress = true;
  SweepRunner runner(opts);
  BenchReport report("users", runner.threads(), kDuplicates);

  std::vector<Replication> jobs;
  for (std::size_t pi = 0; pi < pops.size(); ++pi) {
    const std::uint64_t seed = SweepSeed(0xA66B, pi, 0);
    Rng rng(seed);
    auto topo = std::make_shared<const Topology>(
        GenerateTopology(UsersConfig(pops[pi], seed).topology, rng));
    for (int rep = 0; rep < kDuplicates; ++rep) {
      jobs.push_back(Replication{UsersConfig(pops[pi], seed), topo,
                                 static_cast<int>(pi), rep,
                                 "users=" + std::to_string(pops[pi])});
    }
  }
  const auto outcomes = runner.Run(jobs);
  ThrowIfFailed(outcomes);

  // Bit-identity gate: rep 0 == rep 1 at every population.
  for (std::size_t pi = 0; pi < pops.size(); ++pi) {
    const ScenarioResult* r[kDuplicates] = {nullptr, nullptr};
    for (const ReplicationOutcome& o : outcomes) {
      if (o.point == static_cast<int>(pi)) r[o.rep] = &o.result;
    }
    if (r[0] == nullptr || r[1] == nullptr ||
        ResultToJson(*r[0]).Dump() != ResultToJson(*r[1]).Dump()) {
      std::cerr << "FAIL: same-seed duplicate diverges at users=" << pops[pi]
                << " (aggregate tier must be counter-deterministic)\n";
      return 1;
    }
  }
  std::cout << "Bit-identity check: same-seed duplicates match at every "
               "population\n\n";

  Table t({"total users", "wall s/run", "sim/wall", "total Mbps", "hops"});
  double wall_first = 0.0;
  double wall_last = 0.0;
  for (std::size_t pi = 0; pi < pops.size(); ++pi) {
    double wall = 0.0;
    double sim = 0.0;
    double mbps = 0.0;
    double hops = 0.0;
    for (const ReplicationOutcome& o : outcomes) {
      if (o.point != static_cast<int>(pi)) continue;
      wall += o.wall_seconds / kDuplicates;
      sim += o.sim_seconds / kDuplicates;
      mbps += o.result.total_throughput_bps / 1e6 / kDuplicates;
      hops += static_cast<double>(o.result.im_total_hops) / kDuplicates;
    }
    t.AddRow({std::to_string(pops[pi]), Table::Num(wall, 2),
              Table::Num(wall > 0.0 ? sim / wall : 0.0, 1), Table::Num(mbps, 1),
              Table::Num(hops, 0)});
    report.AddPoint("users=" + std::to_string(pops[pi]), outcomes,
                    static_cast<int>(pi));
    if (pi == 0) wall_first = wall;
    wall_last = wall;
  }
  t.Print(std::cout, "Population scaling (fluid tier: wall time ~flat)");

  if (wall_first > 0.0) {
    std::cout << "wall(" << pops.back() << ") / wall(" << pops.front()
              << ") = " << Table::Num(wall_last / wall_first, 2)
              << "x (fluid tier target: ~1x)\n";
  }
  std::cout << "Bench artifact: " << report.Write() << "\n";
  return 0;
}
