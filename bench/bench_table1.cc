// Table 1: Summary of differences between 802.11af and LTE, printed from
// the implemented models (not hard-coded constants where a model exists),
// plus the Section 6.3.4 signalling-overhead numbers.
#include <chrono>
#include <iostream>

#include "cellfi/common/table.h"
#include "cellfi/phy/cqi_mcs.h"
#include "cellfi/phy/cqi_report.h"
#include "cellfi/phy/resource_grid.h"
#include "cellfi/scenario/sweep.h"
#include "cellfi/wifi/phy_rates.h"

using namespace cellfi;

int main() {
  const auto start = std::chrono::steady_clock::now();
  std::cout << "CellFi reproduction -- Table 1 (802.11af vs LTE design comparison)\n\n";

  // Minimum code rates straight from the PHY tables.
  const double wifi_min_rate = 0.5;  // MCS0 = BPSK 1/2 (see wifi/phy_rates)
  const double lte_min_rate = CqiCodeRate(kMinCqi);

  // LTE grid properties from the resource grid.
  const ResourceGrid grid5(LteBandwidth::k5MHz);
  const ResourceGrid grid20(LteBandwidth::k20MHz);

  Table t({"Property", "802.11af", "LTE (CellFi)"});
  t.AddRow({"PHY design", "OFDM (one user at a time)", "OFDMA (per-RB scheduling)"});
  t.AddRow({"Frequency chunks", "6-8 MHz channels",
            "180 kHz resource blocks (" + std::to_string(grid5.num_rbs()) +
                " on 5 MHz)"});
  t.AddRow({"Min coding rate", Table::Num(wifi_min_rate, 3),
            Table::Num(lte_min_rate, 3) + " (CQI 1)"});
  t.AddRow({"Lowest usable SNR",
            Table::Num(wifi::WifiMcsTable(0).snr_threshold_db, 1) + " dB",
            Table::Num(CqiTable(kMinCqi).sinr_threshold_db, 1) + " dB"});
  t.AddRow({"Hybrid ARQ", "no", "yes (chase combining, 4 tx)"});
  t.AddRow({"Access", "CSMA/CA + RTS/CTS", "scheduled (1 ms subframes)"});
  t.AddRow({"TX duration", "up to 4 ms TXOP", "1 ms subframes"});
  t.AddRow({"Mode", "uncoordinated", "coordinated (CellFi: distributed IM)"});
  t.AddRow({"Subchannels (CellFi IM)", "-",
            std::to_string(grid5.num_subchannels()) + " @5 MHz / " +
                std::to_string(grid20.num_subchannels()) + " @20 MHz"});
  t.Print(std::cout, "Table 1: 802.11af vs LTE");

  // Signalling overhead (Section 6.3.4): mode 3-0 sub-band report.
  CqiMeasurement m;
  m.wideband_cqi = 10;
  m.subband_cqi.assign(static_cast<std::size_t>(grid5.num_subchannels()), 10);
  const Mode30Report report = EncodeMode30(m);
  const int bits = PayloadBits(report);

  Table o({"Quantity", "Paper", "This implementation"});
  o.AddRow({"Sub-bands on 5 MHz", "13", std::to_string(grid5.num_subchannels())});
  o.AddRow({"Report payload", "20 bits", std::to_string(bits) + " bits (4 + 13 x 2)"});
  o.AddRow({"Reporting period", "2 ms", "2 ms"});
  o.AddRow({"Uplink overhead", "10 kbps",
            Table::Num(SignallingOverheadBps(bits, 2.0) / 1000.0, 1) + " kbps"});
  o.Print(std::cout,
          "Section 6.3.4: CQI signalling overhead (mode 3-0, 5 MHz). The paper's "
          "20-bit figure counts fewer sub-bands than 4+13*2 bits; same order.");

  // Table 1 is a deterministic model dump (no replications), but it still
  // emits the machine-readable artifact so sweep tooling can treat all
  // benches uniformly.
  scenario::BenchReport bench_report("table1", 1, 1);
  bench_report.AddPoint(
      "table1", 1,
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count(),
      0.0);
  std::cout << "Bench artifact: " << bench_report.Write() << "\n";
  return 0;
}
