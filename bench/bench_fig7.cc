// Fig. 7: outdoor LTE interference experiment.
//
// Two small cells on one rooftop with sector antennas pointing apart; the
// client samples positions along an arc so the serving RSSI and the
// interference level both sweep. Three conditions per position:
//   (i)   interferer off            -> baseline goodput
//   (ii)  interferer on, no users   -> "signalling interference" (CRS only
//         inside the victim's data region)
//   (iii) interferer fully backlogged -> data interference
// Paper findings: (ii) within ~20 % of (i) even at very low SINR; (iii)
// halves goodput at SINR < 10 dB and causes disconnections.
#include <cmath>
#include <iostream>

#include "cellfi/common/stats.h"
#include "cellfi/common/table.h"
#include "cellfi/lte/network.h"
#include "cellfi/radio/pathloss.h"

using namespace cellfi;

namespace {

enum class Interference { kNone, kSignalling, kFull };

struct Sample {
  double rssi_dbm = 0;
  double sinr_db = 0;
  double goodput_bits_per_symbol = 0;
  std::uint64_t disconnections = 0;
};

Sample RunPosition(double angle_rad, Interference mode, std::uint64_t seed) {
  HataUrbanPathLoss pathloss(15.0, 1.5);
  RadioEnvironmentConfig env_cfg;
  env_cfg.carrier_freq_hz = 600e6;
  env_cfg.shadowing_sigma_db = 0.0;  // controlled walk: geometry drives SINR
  env_cfg.enable_fading = true;
  env_cfg.seed = seed;
  Simulator sim;
  RadioEnvironment env(pathloss, env_cfg);

  const double beam = 2.1;  // ~120 degrees
  const RadioNodeId serving = env.AddNode(
      {.position = {0, 0}, .antenna = Antenna::Sector(7.0, 0.0, beam), .tx_power_dbm = 23.0});
  const RadioNodeId interferer = env.AddNode({.position = {0, 15},
                                              .antenna = Antenna::Sector(7.0, M_PI / 3, beam),
                                              .tx_power_dbm = 23.0});
  const Point client_pos{250.0 * std::cos(angle_rad), 250.0 * std::sin(angle_rad)};
  const RadioNodeId client = env.AddNode({.position = client_pos, .tx_power_dbm = 20.0});
  // The interferer's own backlogged client sits in its boresight.
  const RadioNodeId other = env.AddNode(
      {.position = {100.0 * std::cos(M_PI / 3), 15 + 100.0 * std::sin(M_PI / 3)},
       .tx_power_dbm = 20.0});

  lte::LteNetworkConfig net_cfg;
  net_cfg.seed = seed ^ 0x77;
  lte::LteNetwork net(sim, env, net_cfg);
  lte::LteMacConfig mac;
  mac.bandwidth = LteBandwidth::k5MHz;
  net.AddCell(mac, serving);
  const lte::CellId icell = net.AddCell(mac, interferer);
  const lte::UeId ue = net.AddUe(client, /*force_cell=*/0);
  const lte::UeId iue = net.AddUe(other, /*force_cell=*/icell);

  if (mode == Interference::kNone) net.SetCellActive(icell, false);

  std::uint64_t delivered_bits = 0;
  const SimTime warmup = 500 * kMillisecond;
  net.on_dl_delivered = [&](lte::UeId u, std::uint64_t bytes, SimTime now) {
    if (u == ue && now >= warmup) delivered_bits += 8 * bytes;
  };
  sim.SchedulePeriodic(200 * kMillisecond, [&] {
    net.OfferDownlink(ue, 2 << 20);
    if (mode == Interference::kFull) net.OfferDownlink(iue, 2 << 20);
  });
  sim.ScheduleAt(warmup, [&] {
    if (net.ue(ue).serving == 0) net.cell(0).ResetScheduleStats();
  });
  net.Start();
  sim.RunUntil(3 * kSecond);

  Sample s;
  s.rssi_dbm = env.MeanRxPowerDbm(serving, client);
  s.disconnections = net.ue(ue).disconnections;
  // SINR under full data interference (the x-axis condition of Fig. 7(c)).
  s.sinr_db = env.MeanRxPowerDbm(serving, client) - env.MeanRxPowerDbm(interferer, client);

  // Goodput in information bits per scheduled data resource element.
  const auto& stats = net.cell(0).schedule_stats();
  const auto it = stats.ue_subchannel_subframes.find(ue);
  if (it != stats.ue_subchannel_subframes.end()) {
    const auto& grid = net.cell(0).grid();
    double res = 0.0;
    for (int sc = 0; sc < grid.num_subchannels(); ++sc) {
      res += static_cast<double>(it->second[static_cast<std::size_t>(sc)]) *
             grid.SubchannelRbCount(sc) * grid.DataResourceElementsPerRb();
    }
    if (res > 0) s.goodput_bits_per_symbol = static_cast<double>(delivered_bits) / res;
  }
  return s;
}

}  // namespace

int main() {
  std::cout << "CellFi reproduction -- Fig. 7 (control vs data interference)\n\n";

  Table b({"angle_deg", "rssi_dbm", "sinr_db", "none b/sym", "signalling b/sym", "ratio"});
  Distribution cdf_signalling, cdf_full;
  std::uint64_t disconnects_full = 0, disconnects_signalling = 0;
  Summary signalling_drop;

  // Integer loop: accumulating a double by 12.5 drifts and deriving the
  // seed from it made the seed depend on FP rounding. deg_x10 = deg * 10
  // exactly, so the seeds (700, 825, ..., 1950) match the historical ones.
  for (int step = 0; step <= 10; ++step) {
    const int deg_x10 = -300 + 125 * step;
    const double deg = deg_x10 / 10.0;
    const double rad = deg * M_PI / 180.0;
    const std::uint64_t seed = static_cast<std::uint64_t>(1000 + deg_x10);
    const Sample none = RunPosition(rad, Interference::kNone, seed);
    const Sample sig = RunPosition(rad, Interference::kSignalling, seed);
    const Sample full = RunPosition(rad, Interference::kFull, seed);
    const double ratio = none.goodput_bits_per_symbol > 0
                             ? sig.goodput_bits_per_symbol / none.goodput_bits_per_symbol
                             : 0.0;
    b.AddRow({Table::Num(deg, 0), Table::Num(none.rssi_dbm, 1), Table::Num(full.sinr_db, 1),
              Table::Num(none.goodput_bits_per_symbol, 3),
              Table::Num(sig.goodput_bits_per_symbol, 3), Table::Num(ratio, 2)});
    if (none.goodput_bits_per_symbol > 0) signalling_drop.Add(1.0 - ratio);
    // Fig. 7(c) restricts to SINR < 10 dB.
    if (full.sinr_db < 10.0) {
      cdf_signalling.Add(sig.goodput_bits_per_symbol);
      cdf_full.Add(full.goodput_bits_per_symbol);
      disconnects_full += full.disconnections;
      disconnects_signalling += sig.disconnections;
    }
  }
  b.Print(std::cout, "Fig. 7(b): goodput vs RSSI, no interference vs signalling-only");
  std::cout << "Mean signalling-interference degradation: "
            << Table::Num(100.0 * signalling_drop.mean(), 0)
            << "% (paper: at most ~20%, usually much less)\n\n";

  Table c({"percentile", "signalling b/sym", "full b/sym"});
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90}) {
    c.AddRow({Table::Num(q, 2),
              cdf_signalling.empty() ? "-" : Table::Num(cdf_signalling.Percentile(q), 3),
              cdf_full.empty() ? "-" : Table::Num(cdf_full.Percentile(q), 3)});
  }
  c.Print(std::cout, "Fig. 7(c): goodput CDF at SINR < 10 dB");
  std::cout << "Median full/signalling: "
            << Table::Num(cdf_full.Median() / std::max(cdf_signalling.Median(), 1e-6), 2)
            << " (paper: data interference costs up to ~50%)\n"
            << "Disconnections at SINR < 10 dB: full=" << disconnects_full
            << " signalling=" << disconnects_signalling
            << " (paper: disconnects only under data interference)\n";
  return 0;
}
