// Micro-benchmarks (google-benchmark) for the performance-critical library
// primitives: FFT/DFT, PRACH detection, SINR aggregation, scheduler and
// interference-manager epochs, JSON parsing for PAWS.
#include <benchmark/benchmark.h>

#include "cellfi/chaos/invariants.h"
#include "cellfi/common/fft.h"
#include "cellfi/common/json.h"
#include "cellfi/common/simd.h"
#include "cellfi/core/interference_manager.h"
#include "cellfi/lte/enodeb.h"
#include "cellfi/phy/ofdm.h"
#include "cellfi/phy/prach.h"
#include "cellfi/radio/environment.h"
#include "cellfi/radio/interference.h"
#include "cellfi/radio/pathloss.h"
#include "cellfi/radio/shard_grid.h"

using namespace cellfi;

namespace {

// RAII force-scalar toggle for the in-binary SIMD-vs-scalar A/B pairs
// below. google-benchmark runs registrations sequentially in one thread,
// which is exactly the single-threaded regime simd::ForceScalar requires.
struct ScopedForceScalar {
  explicit ScopedForceScalar(bool force) : prev(simd::ForceScalar(force)) {}
  ~ScopedForceScalar() { simd::ForceScalar(prev); }
  bool prev;
};

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<Complex> data(n);
  for (auto& v : data) v = Complex(rng.Normal(), rng.Normal());
  for (auto _ : state) {
    auto copy = data;
    Fft(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(256)->Arg(1024)->Arg(4096);

// Same transform pinned to the scalar reference kernels — the denominator
// of the DftInto/Fft speedup claims in EXPERIMENTS.md. Results are
// bit-identical to BM_Fft (DESIGN.md §17 contract); only the time differs.
void BM_FftScalar(benchmark::State& state) {
  ScopedForceScalar scalar_only(true);
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<Complex> data(n);
  for (auto& v : data) v = Complex(rng.Normal(), rng.Normal());
  for (auto _ : state) {
    auto copy = data;
    Fft(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftScalar)->Arg(256)->Arg(1024)->Arg(4096);

void BM_BluesteinDft839(benchmark::State& state) {
  Rng rng(2);
  std::vector<Complex> data(839);
  for (auto& v : data) v = Complex(rng.Normal(), rng.Normal());
  for (auto _ : state) {
    auto out = Dft(data);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BluesteinDft839);

void BM_BluesteinDftInto839(benchmark::State& state) {
  Rng rng(2);
  std::vector<Complex> data(839);
  for (auto& v : data) v = Complex(rng.Normal(), rng.Normal());
  DftWorkspace ws;
  std::vector<Complex> out;
  for (auto _ : state) {
    DftInto(data, out, ws);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BluesteinDftInto839);

void BM_BluesteinDftInto839Scalar(benchmark::State& state) {
  ScopedForceScalar scalar_only(true);
  Rng rng(2);
  std::vector<Complex> data(839);
  for (auto& v : data) v = Complex(rng.Normal(), rng.Normal());
  DftWorkspace ws;
  std::vector<Complex> out;
  for (auto _ : state) {
    DftInto(data, out, ws);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BluesteinDftInto839Scalar);

// SINR denominator accumulation kernel in isolation, over the three
// summation strategies: the pre-§17 serial left-to-right loop, the blocked
// 8-lane order on the scalar path, and the dispatched SIMD kernel. The
// blocked orders produce identical bits to each other (not to serial —
// that reassociation is the one-time epsilon audited by
// simd_kernels_test).
void BM_DenomAccumSerial(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  std::vector<double> terms(n);
  for (auto& t : terms) t = rng.Uniform(1e-12, 1e-6);
  for (auto _ : state) {
    double acc = 0.0;
    for (double t : terms) acc += t;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DenomAccumSerial)->Arg(256)->Arg(1024);

void BM_DenomAccumBlockedScalar(benchmark::State& state) {
  ScopedForceScalar scalar_only(true);
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  std::vector<double> terms(n);
  for (auto& t : terms) t = rng.Uniform(1e-12, 1e-6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::BlockedSum8(terms.data(), terms.size()));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DenomAccumBlockedScalar)->Arg(256)->Arg(1024);

void BM_DenomAccumBlockedSimd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  std::vector<double> terms(n);
  for (auto& t : terms) t = rng.Uniform(1e-12, 1e-6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::BlockedSum8(terms.data(), terms.size()));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DenomAccumBlockedSimd)->Arg(256)->Arg(1024);

void BM_OfdmModulate(benchmark::State& state) {
  OfdmParams params;
  Rng rng(7);
  std::vector<Complex> subcarriers(params.used_subcarriers);
  for (auto& v : subcarriers) v = Complex(rng.Normal(), rng.Normal());
  for (auto _ : state) {
    auto symbol = OfdmModulate(params, subcarriers);
    benchmark::DoNotOptimize(symbol.data());
  }
}
BENCHMARK(BM_OfdmModulate);

void BM_OfdmModulateScratch(benchmark::State& state) {
  OfdmParams params;
  Rng rng(7);
  std::vector<Complex> subcarriers(params.used_subcarriers);
  for (auto& v : subcarriers) v = Complex(rng.Normal(), rng.Normal());
  std::vector<Complex> symbol, bins;
  for (auto _ : state) {
    OfdmModulate(params, subcarriers, symbol, bins);
    benchmark::DoNotOptimize(symbol.data());
  }
}
BENCHMARK(BM_OfdmModulateScratch);

void BM_PrachDetect(benchmark::State& state) {
  PrachConfig cfg;
  PrachDetector detector(cfg);
  Rng rng(3);
  const auto rx = PassThroughAwgn(GeneratePreamble(cfg, 17), 5, -10.0, rng);
  for (auto _ : state) {
    auto det = detector.Detect(rx);
    benchmark::DoNotOptimize(&det);
  }
}
BENCHMARK(BM_PrachDetect);

// Multi-preamble search, K root sequences over one received window:
// K independent PrachDetector::DetectAll calls (K forward DFTs of the
// same signal) vs one PrachDetectorBank::DetectAll (one forward DFT,
// K spectrum-multiplies + inverse DFTs). Detections are bit-identical;
// the bank amortizes the forward transform.
std::vector<int> BenchPrachRoots(int k) {
  std::vector<int> roots;
  for (int i = 0; i < k; ++i) roots.push_back(17 + 6 * i);
  return roots;
}

void BM_PrachDetectAllPerDetector(benchmark::State& state) {
  PrachConfig cfg;
  const auto roots = BenchPrachRoots(static_cast<int>(state.range(0)));
  std::vector<PrachDetector> detectors;
  for (int r : roots) {
    PrachConfig c = cfg;
    c.root = r;
    detectors.emplace_back(c);
  }
  Rng rng(3);
  const auto rx = PassThroughAwgn(GeneratePreamble(cfg, 17), 5, -10.0, rng);
  for (auto _ : state) {
    for (auto& d : detectors) {
      auto det = d.DetectAll(rx);
      benchmark::DoNotOptimize(&det);
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(roots.size()));
}
BENCHMARK(BM_PrachDetectAllPerDetector)->Arg(4)->Arg(8);

void BM_PrachDetectAllBank(benchmark::State& state) {
  PrachConfig cfg;
  const auto roots = BenchPrachRoots(static_cast<int>(state.range(0)));
  PrachDetectorBank bank(cfg, roots);
  Rng rng(3);
  const auto rx = PassThroughAwgn(GeneratePreamble(cfg, 17), 5, -10.0, rng);
  for (auto _ : state) {
    auto det = bank.DetectAll(rx);
    benchmark::DoNotOptimize(&det);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(roots.size()));
}
BENCHMARK(BM_PrachDetectAllBank)->Arg(4)->Arg(8);

void BM_SinrAggregation(benchmark::State& state) {
  static HataUrbanPathLoss pathloss;
  RadioEnvironmentConfig cfg;
  cfg.enable_fading = true;
  RadioEnvironment env(pathloss, cfg);
  Rng rng(4);
  std::vector<ActiveTransmitter> interferers;
  const RadioNodeId rx = env.AddNode({.position = {0, 0}});
  const RadioNodeId tx = env.AddNode({.position = {200, 0}, .tx_power_dbm = 30});
  for (int i = 0; i < state.range(0); ++i) {
    interferers.push_back({env.AddNode({.position = {rng.Uniform(-2000, 2000),
                                                     rng.Uniform(-2000, 2000)},
                                        .tx_power_dbm = 30}),
                           1.0 / 13.0});
  }
  SimTime now = 0;
  for (auto _ : state) {
    now += kMillisecond;
    benchmark::DoNotOptimize(env.SinrDb(tx, rx, 3, now, interferers, 360e3, 1.0 / 13.0));
  }
}
BENCHMARK(BM_SinrAggregation)->Arg(4)->Arg(14)->Arg(50);

// Shared setup for the interference-engine kernels: `n` cells all
// transmitting full-band (13 subchannels, flat PSD) and one receiver,
// no fading — the regime where the engine's aggregate cache pays.
struct EngineBenchWorld {
  explicit EngineBenchWorld(int n, bool fading = false)
      : env(pathloss, Config(fading)), imap(env) {
    Rng rng(6);
    rx = env.AddNode({.position = {0, 0}});
    tx = env.AddNode({.position = {200, 0}, .tx_power_dbm = 30});
    for (int i = 0; i < n; ++i) {
      cells.push_back(env.AddNode({.position = {rng.Uniform(-2000, 2000),
                                                rng.Uniform(-2000, 2000)},
                                   .tx_power_dbm = 30}));
    }
  }
  static RadioEnvironmentConfig Config(bool fading) {
    RadioEnvironmentConfig cfg;
    cfg.enable_fading = fading;
    return cfg;
  }
  void Populate() {
    imap.BeginEpoch(13, 360e3);
    for (RadioNodeId c : cells) {
      for (int s = 0; s < 13; ++s) imap.AddTransmitter(s, c, 1.0 / 13.0);
    }
  }
  static HataUrbanPathLoss pathloss;
  RadioEnvironment env;
  InterferenceMap imap;
  RadioNodeId rx = 0;
  RadioNodeId tx = 0;
  std::vector<RadioNodeId> cells;
};
HataUrbanPathLoss EngineBenchWorld::pathloss;

void BM_InterferenceMapBuild(benchmark::State& state) {
  EngineBenchWorld w(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    w.Populate();
    benchmark::DoNotOptimize(w.imap.num_subchannels());
  }
}
BENCHMARK(BM_InterferenceMapBuild)->Arg(4)->Arg(16)->Arg(64);

void BM_InterferenceMapSinrLookup(benchmark::State& state) {
  // Steady state of the fading-off fast path: the epoch's aggregate rows
  // are already built, each query is a cache hit. All 13 subchannel lists
  // are identical, so they share one aggregate (num_groups() == 1).
  EngineBenchWorld w(static_cast<int>(state.range(0)));
  w.Populate();
  SimTime now = 0;
  int s = 0;
  for (auto _ : state) {
    now += kMillisecond;
    s = (s + 1) % 13;
    benchmark::DoNotOptimize(w.imap.SinrDb(w.tx, w.rx, s, now, 1.0 / 13.0));
  }
}
BENCHMARK(BM_InterferenceMapSinrLookup)->Arg(4)->Arg(16)->Arg(64);

void BM_SinrPerLinkLegacy(benchmark::State& state) {
  // What the engine replaces: rebuild the interferer vector and pay the
  // per-link summation on every query (the legacy subframe inner loop).
  EngineBenchWorld w(static_cast<int>(state.range(0)));
  std::vector<ActiveTransmitter> interferers;
  SimTime now = 0;
  int s = 0;
  for (auto _ : state) {
    now += kMillisecond;
    s = (s + 1) % 13;
    interferers.clear();
    for (RadioNodeId c : w.cells) {
      interferers.push_back(ActiveTransmitter{.node = c, .power_scale = 1.0 / 13.0});
    }
    benchmark::DoNotOptimize(w.env.SinrDb(w.tx, w.rx, static_cast<std::uint32_t>(s), now,
                                          interferers, 360e3, 1.0 / 13.0));
  }
}
BENCHMARK(BM_SinrPerLinkLegacy)->Arg(4)->Arg(16)->Arg(64);

void BM_NeighborGraphBuild(benchmark::State& state) {
  // One-off (per position epoch) cost of deriving the below-noise-floor
  // neighbor bitmap + adjacency lists the shard layer and the cull fast
  // path share (DESIGN.md §15). O(n^2) mean-power evaluations.
  EngineBenchWorld w(static_cast<int>(state.range(0)));
  NeighborGraph graph;
  for (auto _ : state) {
    graph.Build(w.env, 30.0, 360e3);
    benchmark::DoNotOptimize(graph.edge_count());
  }
}
BENCHMARK(BM_NeighborGraphBuild)->Arg(16)->Arg(64)->Arg(256);

void BM_ShardBarrierMerge(benchmark::State& state) {
  // The serial section at the uplink subframe barrier: per-shard staged
  // transmitter plans merged into the InterferenceMap in global
  // cell-index order (never completion order), then sealed. This is the
  // Amdahl floor of the shard layer — everything else in the subframe
  // runs on the pool.
  const int n = static_cast<int>(state.range(0));
  EngineBenchWorld w(n);
  // Staged plan per cell, as the parallel plan phase leaves it: every
  // cell transmits on all 13 subchannels at flat PSD.
  struct StagedTx {
    int subchannel;
    double power_scale;
  };
  std::vector<std::vector<StagedTx>> staged(static_cast<std::size_t>(n));
  for (auto& plan : staged) {
    for (int s = 0; s < 13; ++s) plan.push_back({s, 1.0 / 13.0});
  }
  for (auto _ : state) {
    w.imap.BeginEpoch(13, 360e3);
    for (int c = 0; c < n; ++c) {
      for (const StagedTx& t : staged[static_cast<std::size_t>(c)]) {
        w.imap.AddTransmitter(t.subchannel, w.cells[static_cast<std::size_t>(c)],
                              t.power_scale);
      }
    }
    w.imap.Seal();
    benchmark::DoNotOptimize(w.imap.num_subchannels());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) * 13);
}
BENCHMARK(BM_ShardBarrierMerge)->Arg(16)->Arg(64)->Arg(256);

void BM_SchedulerSubframe(benchmark::State& state) {
  lte::LteMacConfig mac;
  lte::EnodeB enb(0, mac);
  Rng rng(5);
  for (int u = 0; u < state.range(0); ++u) {
    auto& ue = enb.AddUe(u);
    ue.EnqueueDownlink(1 << 20);
    std::vector<int> cqi(13);
    for (auto& c : cqi) c = static_cast<int>(rng.UniformInt(3, 15));
    ue.UpdateCqi(10, cqi);
  }
  for (auto _ : state) {
    auto plan = enb.PlanDownlink();
    benchmark::DoNotOptimize(&plan);
  }
}
BENCHMARK(BM_SchedulerSubframe)->Arg(2)->Arg(6)->Arg(16);

void BM_InterferenceManagerEpoch(benchmark::State& state) {
  core::InterferenceManagerConfig cfg;
  core::InterferenceManager im(cfg, 6);
  core::EpochInputs in;
  in.own_active_clients = 6;
  in.estimated_contenders = 12;
  in.utility.assign(13, 1.0);
  in.interference_pressure.assign(13, 0.1);
  in.free_for_reuse.assign(13, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(&im.OnEpoch(in));
  }
}
BENCHMARK(BM_InterferenceManagerEpoch);

void BM_PawsJsonRoundTrip(benchmark::State& state) {
  json::Value v;
  v["jsonrpc"] = "2.0";
  v["method"] = "spectrum.paws.getSpectrum";
  v["params"]["deviceDesc"]["serialNumber"] = "cellfi-ap-001";
  v["params"]["location"]["point"]["center"]["latitude"] = 47.64;
  v["params"]["location"]["point"]["center"]["longitude"] = -122.13;
  v["id"] = 17;
  const std::string body = v.Dump();
  for (auto _ : state) {
    auto parsed = json::Parse(body);
    benchmark::DoNotOptimize(&parsed);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(body.size()));
}
BENCHMARK(BM_PawsJsonRoundTrip);

// Cost of an invariant check site with NO checker scoped in: one
// thread-local load and branch (the instrumented hot paths — scheduler
// subframes, controller epochs — pay exactly this when chaos is off).
void BM_InvariantGuardDisabled(benchmark::State& state) {
  std::uint64_t sink = 0;
  for (auto _ : state) {
    if (chaos::InvariantChecker* ic = chaos::ActiveChecker()) {
      ic->CheckPrbGrant(0, 1, 25, 0);
      ++sink;
    }
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_InvariantGuardDisabled);

// Same site with a live checker: the enabled path's full cost, for
// contrast against the disabled guard above.
void BM_InvariantGuardEnabled(benchmark::State& state) {
  chaos::InvariantChecker checker;
  chaos::InvariantScope scope(&checker);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    if (chaos::InvariantChecker* ic = chaos::ActiveChecker()) {
      ic->CheckPrbGrant(0, 1, 25, 0);
      ++sink;
    }
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_InvariantGuardEnabled);

}  // namespace

BENCHMARK_MAIN();
