// Fig. 8: PHY throughput and reported CQI during four states of an
// interfering radio (OFF / ON / OFF / ON-faded).
//
// The last ON period uses a distant interferer whose signal arrives too
// weak to matter — the paper's illustration that a detector must not
// trigger on interference the channel has already faded away.
#include <iostream>

#include "cellfi/common/table.h"
#include "cellfi/core/cqi_detector.h"
#include "cellfi/lte/network.h"
#include "cellfi/radio/pathloss.h"

using namespace cellfi;

int main() {
  std::cout << "CellFi reproduction -- Fig. 8 (throughput + CQI under ON/OFF interferer)\n\n";

  HataUrbanPathLoss pathloss(15.0, 1.5);
  RadioEnvironmentConfig env_cfg;
  env_cfg.carrier_freq_hz = 600e6;
  env_cfg.shadowing_sigma_db = 0.0;
  env_cfg.enable_fading = true;
  env_cfg.seed = 42;
  Simulator sim;
  RadioEnvironment env(pathloss, env_cfg);

  const RadioNodeId serving = env.AddNode({.position = {0, 0}, .tx_power_dbm = 30.0});
  const RadioNodeId strong_int = env.AddNode({.position = {400, 0}, .tx_power_dbm = 30.0});
  const RadioNodeId weak_int = env.AddNode({.position = {1900, 0}, .tx_power_dbm = 30.0});
  const RadioNodeId client = env.AddNode({.position = {150, 0}, .tx_power_dbm = 20.0});
  const RadioNodeId near_strong = env.AddNode({.position = {410, 30}, .tx_power_dbm = 20.0});
  const RadioNodeId near_weak = env.AddNode({.position = {1910, 30}, .tx_power_dbm = 20.0});

  lte::LteNetworkConfig net_cfg;
  net_cfg.seed = 7;
  lte::LteNetwork net(sim, env, net_cfg);
  lte::LteMacConfig mac;
  mac.bandwidth = LteBandwidth::k5MHz;
  const lte::CellId c0 = net.AddCell(mac, serving);
  const lte::CellId c_strong = net.AddCell(mac, strong_int);
  const lte::CellId c_weak = net.AddCell(mac, weak_int);
  const lte::UeId ue = net.AddUe(client, c0);
  const lte::UeId ue_s = net.AddUe(near_strong, c_strong);
  const lte::UeId ue_w = net.AddUe(near_weak, c_weak);

  // Interferer schedule: OFF 0-1 s, ON 1-2 s, OFF 2-3 s, ON(faded) 3-4 s.
  // The interferer radios stay on-air (their idle CRS is the signalling
  // interference of Fig. 7); ON/OFF gates their DATA traffic — exactly the
  // distinction the figure illustrates. The "faded" ON uses a far
  // interferer whose data arrives too weak to matter.
  bool strong_on = false, weak_on = false;
  sim.ScheduleAt(1 * kSecond, [&] { strong_on = true; });
  sim.ScheduleAt(2 * kSecond, [&] {
    strong_on = false;
    net.ClearDownlinkQueue(ue_s);
  });
  sim.ScheduleAt(3 * kSecond, [&] { weak_on = true; });

  // Track throughput per 100 ms bucket and the reported wideband CQI.
  const int buckets = 40;
  std::vector<double> bits(static_cast<std::size_t>(buckets), 0.0);
  std::vector<int> cqi(static_cast<std::size_t>(buckets), 0);
  core::CqiInterferenceDetector detector(13);
  std::vector<bool> detected(static_cast<std::size_t>(buckets), false);

  net.on_dl_delivered = [&](lte::UeId u, std::uint64_t bytes, SimTime now) {
    if (u != ue) return;
    const auto b = static_cast<std::size_t>(now / (100 * kMillisecond));
    if (b < bits.size()) bits[b] += 8.0 * static_cast<double>(bytes);
  };
  net.on_cqi_report = [&](lte::CellId cell, lte::UeId u, const CqiMeasurement& m) {
    if (cell != c0 || u != ue) return;
    const auto b = static_cast<std::size_t>(sim.Now() / (100 * kMillisecond));
    if (b < cqi.size()) cqi[b] = m.wideband_cqi;
    detector.AddReport(m.subband_cqi);
    bool any = false;
    for (int s = 0; s < 13; ++s) any |= detector.Detected(s);
    if (b < detected.size() && any) detected[b] = true;
  };

  sim.SchedulePeriodic(100 * kMillisecond, [&] {
    net.OfferDownlink(ue, 4 << 20);
    if (strong_on) net.OfferDownlink(ue_s, 4 << 20);
    if (weak_on) net.OfferDownlink(ue_w, 4 << 20);
  });
  net.Start();
  sim.RunUntil(4 * kSecond);

  Table t({"t_s", "state", "throughput_mbps", "wideband_cqi", "detector"});
  for (int b = 1; b < buckets; ++b) {
    const double t_s = b * 0.1;
    const char* state = t_s < 1.0   ? "OFF"
                        : t_s < 2.0 ? "ON"
                        : t_s < 3.0 ? "OFF"
                                    : "ON (faded)";
    t.AddRow({Table::Num(t_s, 1), state,
              Table::Num(bits[static_cast<std::size_t>(b)] / 0.1 / 1e6, 2),
              std::to_string(cqi[static_cast<std::size_t>(b)]),
              detected[static_cast<std::size_t>(b)] ? "interference" : "-"});
  }
  t.Print(std::cout, "Fig. 8: PHY throughput and CQI (100 ms buckets)");

  // Summaries per state.
  auto mean_over = [&](double from_s, double to_s) {
    double sum = 0.0;
    int n = 0;
    for (int b = 0; b < buckets; ++b) {
      const double t_s = b * 0.1;
      if (t_s >= from_s && t_s < to_s) {
        sum += bits[static_cast<std::size_t>(b)] / 0.1 / 1e6;
        ++n;
      }
    }
    return n ? sum / n : 0.0;
  };
  Table s({"period", "state", "mean_mbps"});
  s.AddRow({"0-1 s", "OFF", Table::Num(mean_over(0.2, 1.0), 2)});
  s.AddRow({"1-2 s", "ON (strong)", Table::Num(mean_over(1.0, 2.0), 2)});
  s.AddRow({"2-3 s", "OFF", Table::Num(mean_over(2.0, 3.0), 2)});
  s.AddRow({"3-4 s", "ON (faded/weak)", Table::Num(mean_over(3.0, 4.0), 2)});
  s.Print(std::cout,
          "Expected shape: strong ON halves throughput; faded ON barely matters");
  return 0;
}
