// Cell-count scaling bench for the per-subframe interference engine
// (DESIGN.md §12) and the intra-replication shard layer (DESIGN.md §15):
// plain-LTE backlogged scenarios at constant AP density, resolved over
// identical topologies and seeds as —
//   legacy         per-link interference summation (engine off; <= 64
//                  cells only — it is quadratic and exists as the ground
//                  truth for the bit-identity gate),
//   engine         shared per-subchannel lists + cached aggregates,
//                  shards=1 (label kept from PR 4 for baseline diffing),
//   engine_sK      engine partitioned into K spatial shards, subframe
//                  phases on the shard worker pool (K from
//                  CELLFI_BENCH_SCALE_SHARDS, default 2,4,8),
//   engine_cull30  engine + 30 dB below-noise interferer culling through
//                  the NeighborGraph fast path.
// Emits BENCH_scale.json and prints per-count wall times and speedups.
//
// Built-in bit-identity gate: every engine_sK summary must equal the
// shards=1 engine summary to the last bit (fixed merge order makes the
// shard count unobservable), and engine must equal legacy where legacy
// runs. Any mismatch fails the bench.
//
// The sweep runner is pinned to ONE thread so replication-level
// parallelism does not absorb the cores the shard pool is being measured
// on; shard threads derive from hardware concurrency (the >= 2x shards=4
// acceptance number is meaningful on a 4+-core machine — on fewer cores
// the derived pool shrinks and speedups approach 1x by design).
//
// Cell counts default to 4..1024 (CELLFI_BENCH_SCALE_CELLS overrides for
// smoke runs).
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cellfi/common/table.h"
#include "cellfi/sim/worker_pool.h"
#include "fig9_common.h"

using namespace fig9;

namespace {

std::vector<int> ParseIntList(const char* env_name, std::vector<int> fallback) {
  const char* env = std::getenv(env_name);
  if (env == nullptr || *env == '\0') return fallback;
  std::vector<int> out;
  std::stringstream ss(env);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const int n = std::atoi(item.c_str());
    if (n > 0) out.push_back(n);
  }
  return out.empty() ? fallback : out;
}

std::vector<int> CellCounts() {
  return ParseIntList("CELLFI_BENCH_SCALE_CELLS",
                      {4, 8, 16, 32, 64, 256, 512, 1024});
}

std::vector<int> ShardCounts() {
  return ParseIntList("CELLFI_BENCH_SCALE_SHARDS", {2, 4, 8});
}

ScenarioConfig ScaleConfig(int num_aps, std::uint64_t seed) {
  // Fig. 9 propagation and powers, but constant AP density (the area grows
  // with sqrt(n)) so per-cell interferer counts — not coverage geometry —
  // are what changes across the sweep. Fading is off: the aggregate-cache
  // fast path is what this bench characterizes, and the bit-identity
  // checks stay meaningful either way (fading delegates to the identical
  // per-link path). Sim durations shrink with cell count so the 1024-cell
  // points stay runnable; every variant at one count shares the duration,
  // so speedups are unaffected.
  ScenarioConfig cfg = BaseConfig(Technology::kLte, num_aps, 3, seed);
  cfg.topology.area_m = 500.0 * std::sqrt(static_cast<double>(num_aps));
  cfg.enable_fading = false;
  if (num_aps <= 64) {
    cfg.warmup = 1 * kSecond;
    cfg.duration = 4 * kSecond;
  } else if (num_aps <= 256) {
    cfg.warmup = 500 * kMillisecond;
    cfg.duration = 2 * kSecond;
  } else {
    cfg.warmup = 250 * kMillisecond;
    cfg.duration = 1 * kSecond;
  }
  return cfg;
}

bool SameResult(const ScenarioResult& a, const ScenarioResult& b) {
  if (a.clients.size() != b.clients.size()) return false;
  if (a.total_throughput_bps != b.total_throughput_bps) return false;
  if (a.fraction_connected != b.fraction_connected) return false;
  if (a.fraction_starved != b.fraction_starved) return false;
  for (std::size_t i = 0; i < a.clients.size(); ++i) {
    if (a.clients[i].throughput_bps != b.clients[i].throughput_bps) return false;
  }
  return true;
}

struct Variant {
  std::string name;
  bool engine = true;
  double floor_db = 0.0;
  int shards = 1;
  bool identity_reference = false;  // the shards=1 engine run others diff against
};

std::vector<Variant> VariantsFor(int cells, const std::vector<int>& shard_counts) {
  std::vector<Variant> v;
  if (cells <= 64) {
    v.push_back(Variant{.name = "legacy", .engine = false});
  }
  v.push_back(Variant{.name = "engine", .identity_reference = true});
  for (int k : shard_counts) {
    if (k <= 1) continue;
    v.push_back(Variant{.name = "engine_s" + std::to_string(k), .shards = k});
  }
  v.push_back(Variant{.name = "engine_cull30", .floor_db = 30.0});
  return v;
}

}  // namespace

int main() {
  std::cout << "CellFi reproduction -- interference-engine + shard scaling bench\n";
  std::cout << "hardware threads: " << cellfi::HardwareConcurrency() << "\n\n";
  const std::vector<int> counts = CellCounts();
  const std::vector<int> shard_counts = ShardCounts();
  const int reps = Reps(1);

  // One sweep thread: the shard pool inside each replication is what this
  // bench measures, so it gets the machine (see the nested-parallelism
  // guard in sim/worker_pool).
  SweepOptions opts;
  opts.progress = true;
  opts.threads = 1;
  SweepRunner runner(opts);
  BenchReport report("scale", runner.threads(), reps);

  struct PointInfo {
    int cells = 0;
    Variant variant;
  };
  std::vector<PointInfo> points;
  std::vector<Replication> jobs;
  for (std::size_t ci = 0; ci < counts.size(); ++ci) {
    const std::vector<Variant> variants = VariantsFor(counts[ci], shard_counts);
    const int first_point = static_cast<int>(points.size());
    for (const Variant& v : variants) {
      points.push_back(PointInfo{counts[ci], v});
    }
    for (int rep = 0; rep < reps; ++rep) {
      const std::uint64_t seed = SweepSeed(0x5CA1E, ci, static_cast<std::uint64_t>(rep));
      Rng rng(seed);
      auto topo = std::make_shared<const Topology>(
          GenerateTopology(ScaleConfig(counts[ci], seed).topology, rng));
      for (std::size_t vi = 0; vi < variants.size(); ++vi) {
        ScenarioConfig cfg = ScaleConfig(counts[ci], seed);
        cfg.use_interference_engine = variants[vi].engine;
        cfg.interference_floor_db = variants[vi].floor_db;
        cfg.shards = variants[vi].shards;
        jobs.push_back(Replication{
            cfg, topo, first_point + static_cast<int>(vi), rep,
            "cells=" + std::to_string(counts[ci]) + "/" + variants[vi].name});
      }
    }
  }
  const auto outcomes = runner.Run(jobs);
  ThrowIfFailed(outcomes);

  const auto result_of = [&](int point, int rep) -> const ScenarioResult* {
    for (const ReplicationOutcome& o : outcomes) {
      if (o.point == point && o.rep == rep) return &o.result;
    }
    return nullptr;
  };

  // Bit-identity gate. Two invariants, checked per (cell count, rep):
  //   1. engine (shards=1, cull off) == legacy — the PR 4 contract;
  //   2. engine_sK == engine for every K — the shard-layer contract: merge
  //      order is fixed at the barrier, so the shard count is unobservable
  //      in the results.
  for (int p = 0; p < static_cast<int>(points.size()); ++p) {
    if (!points[static_cast<std::size_t>(p)].variant.identity_reference) continue;
    const int cells = points[static_cast<std::size_t>(p)].cells;
    for (int rep = 0; rep < reps; ++rep) {
      const ScenarioResult* ref = result_of(p, rep);
      if (ref == nullptr) continue;
      for (int q = 0; q < static_cast<int>(points.size()); ++q) {
        const PointInfo& info = points[static_cast<std::size_t>(q)];
        if (info.cells != cells || q == p) continue;
        if (info.variant.floor_db > 0.0) continue;  // cull approximates by design
        const ScenarioResult* other = result_of(q, rep);
        if (other == nullptr) continue;
        if (!SameResult(*ref, *other)) {
          std::cerr << "FAIL: " << info.variant.name
                    << " result diverges from engine shards=1 at cells=" << cells
                    << " rep=" << rep << "\n";
          return 1;
        }
      }
    }
  }
  std::cout << "Bit-identity check: every shard count (and legacy) matches "
               "engine shards=1 at every cell count\n\n";

  std::vector<std::string> header{"cells"};
  const std::vector<Variant> widest = VariantsFor(counts.empty() ? 4 : counts.front(),
                                                  shard_counts);
  // Column set from the largest variant list (small counts add "legacy").
  std::vector<std::string> column_names;
  for (const PointInfo& info : points) {
    bool seen = false;
    for (const std::string& n : column_names) seen |= n == info.variant.name;
    if (!seen) column_names.push_back(info.variant.name);
  }
  for (const std::string& n : column_names) header.push_back(n + " s");
  header.push_back("s4 speedup");
  Table t(header);

  double worst_s4_speedup_256plus = -1.0;
  for (int cells : counts) {
    std::vector<std::string> row{std::to_string(cells)};
    double engine_wall = 0.0;
    double s4_wall = 0.0;
    for (const std::string& name : column_names) {
      double wall = 0.0;
      bool present = false;
      for (int p = 0; p < static_cast<int>(points.size()); ++p) {
        const PointInfo& info = points[static_cast<std::size_t>(p)];
        if (info.cells != cells || info.variant.name != name) continue;
        present = true;
        for (const ReplicationOutcome& o : outcomes) {
          if (o.point == p) wall += o.wall_seconds;
        }
        report.AddPoint("cells=" + std::to_string(cells) + "/" + name, outcomes, p);
      }
      row.push_back(present ? Table::Num(wall, 2) : "-");
      if (name == "engine") engine_wall = wall;
      if (name == "engine_s4") s4_wall = wall;
    }
    const double s4_speedup = s4_wall > 0.0 ? engine_wall / s4_wall : 0.0;
    row.push_back(s4_wall > 0.0 ? Table::Num(s4_speedup, 2) + "x" : "-");
    if (cells >= 256 && s4_wall > 0.0) {
      if (worst_s4_speedup_256plus < 0.0 || s4_speedup < worst_s4_speedup_256plus) {
        worst_s4_speedup_256plus = s4_speedup;
      }
    }
    t.AddRow(row);
  }
  t.Print(std::cout, "Wall time per variant (all reps); s4 speedup = engine/engine_s4");

  if (worst_s4_speedup_256plus >= 0.0 && cellfi::HardwareConcurrency() >= 4 &&
      worst_s4_speedup_256plus < 2.0) {
    // Advisory, not fatal: thermal/contended machines shouldn't fail the
    // determinism gate, but the regression is worth a loud line.
    std::cout << "WARN: shards=4 speedup at 256+ cells is "
              << worst_s4_speedup_256plus << "x (< 2x on a "
              << cellfi::HardwareConcurrency() << "-thread machine)\n";
  }
  std::cout << "Bench artifact: " << report.Write() << "\n";
  return 0;
}
