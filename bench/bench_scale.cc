// Cell-count scaling bench for the per-subframe interference engine
// (DESIGN.md §12): plain-LTE backlogged scenarios at constant AP density,
// resolved three ways over identical topologies and seeds —
//   legacy        per-link interference summation (engine off),
//   engine        shared per-subchannel lists + cached aggregates,
//   engine_cull30 engine + 30 dB below-noise interferer culling.
// Emits BENCH_scale.json and prints the engine-vs-legacy wall-time
// speedup per cell count. The legacy and engine variants must produce
// bit-identical scenario summaries (the cull is off there); any mismatch
// fails the bench.
//
// Cell counts default to 4..64 doubling; CELLFI_BENCH_SCALE_CELLS
// (comma-separated list) overrides for smoke runs.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cellfi/common/table.h"
#include "fig9_common.h"

using namespace fig9;

namespace {

std::vector<int> CellCounts() {
  std::vector<int> counts{4, 8, 16, 32, 64};
  const char* env = std::getenv("CELLFI_BENCH_SCALE_CELLS");
  if (env == nullptr || *env == '\0') return counts;
  counts.clear();
  std::stringstream ss(env);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const int n = std::atoi(item.c_str());
    if (n > 0) counts.push_back(n);
  }
  if (counts.empty()) counts = {4, 8};
  return counts;
}

ScenarioConfig ScaleConfig(int num_aps, std::uint64_t seed) {
  // Fig. 9 propagation and powers, but constant AP density (the area grows
  // with sqrt(n)) so per-cell interferer counts — not coverage geometry —
  // are what changes across the sweep. Fading is off: the aggregate-cache
  // fast path is what this bench characterizes, and the legacy/engine
  // bit-identity check stays meaningful either way (fading delegates to
  // the identical per-link path).
  ScenarioConfig cfg = BaseConfig(Technology::kLte, num_aps, 3, seed);
  cfg.topology.area_m = 500.0 * std::sqrt(static_cast<double>(num_aps));
  cfg.enable_fading = false;
  cfg.warmup = 1 * kSecond;
  cfg.duration = 4 * kSecond;
  return cfg;
}

bool SameResult(const ScenarioResult& a, const ScenarioResult& b) {
  if (a.clients.size() != b.clients.size()) return false;
  if (a.total_throughput_bps != b.total_throughput_bps) return false;
  if (a.fraction_connected != b.fraction_connected) return false;
  if (a.fraction_starved != b.fraction_starved) return false;
  for (std::size_t i = 0; i < a.clients.size(); ++i) {
    if (a.clients[i].throughput_bps != b.clients[i].throughput_bps) return false;
  }
  return true;
}

}  // namespace

int main() {
  std::cout << "CellFi reproduction -- interference-engine scaling bench\n\n";
  const std::vector<int> counts = CellCounts();
  const int reps = Reps(1);

  struct Variant {
    const char* name;
    bool engine;
    double floor_db;
  };
  const Variant variants[] = {{"legacy", false, 0.0},
                              {"engine", true, 0.0},
                              {"engine_cull30", true, 30.0}};
  constexpr int kNumVariants = 3;

  SweepOptions opts;
  opts.progress = true;
  SweepRunner runner(opts);
  BenchReport report("scale", runner.threads(), reps);

  // point = cell_count_index * kNumVariants + variant_index.
  std::vector<Replication> jobs;
  for (std::size_t ci = 0; ci < counts.size(); ++ci) {
    for (int rep = 0; rep < reps; ++rep) {
      const std::uint64_t seed = SweepSeed(0x5CA1E, ci, static_cast<std::uint64_t>(rep));
      Rng rng(seed);
      auto topo = std::make_shared<const Topology>(
          GenerateTopology(ScaleConfig(counts[ci], seed).topology, rng));
      for (int vi = 0; vi < kNumVariants; ++vi) {
        ScenarioConfig cfg = ScaleConfig(counts[ci], seed);
        cfg.use_interference_engine = variants[vi].engine;
        cfg.interference_floor_db = variants[vi].floor_db;
        jobs.push_back(Replication{cfg, topo,
                                   static_cast<int>(ci) * kNumVariants + vi, rep});
      }
    }
  }
  const auto outcomes = runner.Run(jobs);
  ThrowIfFailed(outcomes);

  // Bit-identity gate: with the cull off, the engine must reproduce the
  // legacy per-link arithmetic exactly — same seeds, same topology, so the
  // scenario summaries must match to the last bit.
  for (std::size_t ci = 0; ci < counts.size(); ++ci) {
    for (int rep = 0; rep < reps; ++rep) {
      const ScenarioResult* res[kNumVariants] = {nullptr, nullptr, nullptr};
      for (const ReplicationOutcome& o : outcomes) {
        if (o.rep != rep) continue;
        for (int vi = 0; vi < kNumVariants; ++vi) {
          if (o.point == static_cast<int>(ci) * kNumVariants + vi) res[vi] = &o.result;
        }
      }
      if (res[0] == nullptr || res[1] == nullptr) continue;
      if (!SameResult(*res[0], *res[1])) {
        std::cerr << "FAIL: engine result diverges from legacy at cells="
                  << counts[ci] << " rep=" << rep << "\n";
        return 1;
      }
    }
  }
  std::cout << "Bit-identity check: engine == legacy at every cell count\n\n";

  Table t({"cells", "legacy s", "engine s", "cull30 s", "speedup", "cull speedup"});
  for (std::size_t ci = 0; ci < counts.size(); ++ci) {
    double wall[kNumVariants] = {0.0, 0.0, 0.0};
    for (int vi = 0; vi < kNumVariants; ++vi) {
      const int point = static_cast<int>(ci) * kNumVariants + vi;
      for (const ReplicationOutcome& o : outcomes) {
        if (o.point == point) wall[vi] += o.wall_seconds;
      }
      report.AddPoint("cells=" + std::to_string(counts[ci]) + "/" + variants[vi].name,
                      outcomes, point);
    }
    t.AddRow({std::to_string(counts[ci]), Table::Num(wall[0], 2), Table::Num(wall[1], 2),
              Table::Num(wall[2], 2),
              Table::Num(wall[1] > 0 ? wall[0] / wall[1] : 0.0, 2) + "x",
              Table::Num(wall[2] > 0 ? wall[0] / wall[2] : 0.0, 2) + "x"});
  }
  t.Print(std::cout, "Wall time per variant (all reps), engine speedup vs legacy");
  std::cout << "Bench artifact: " << report.Write() << "\n";
  return 0;
}
